"""Tests for semantic analysis: binding, pushdown, aggregation planning."""

import pytest

from repro.common.errors import SemanticError
from repro.common.rows import DataType
from repro.plan.analyzer import Analyzer, collect_input_refs, shift_input_refs
from repro.plan.logical import (
    AggregateNode,
    DistinctNode,
    Filter,
    JoinNode,
    LimitNode,
    Project,
    Scan,
    SortNode,
)
from repro.exec import expressions as bexpr
from repro.exec.expressions import InputRef
from repro.sql import parse_statement
from repro.storage.metastore import Metastore


@pytest.fixture()
def analyzer(warehouse):
    _hdfs, metastore = warehouse
    return Analyzer(metastore)


def analyze(analyzer, sql):
    return analyzer.analyze(parse_statement(sql))


class TestBasicShapes:
    def test_scan_project(self, analyzer):
        node = analyze(analyzer, "SELECT name, salary FROM emp")
        assert isinstance(node, Project)
        assert isinstance(node.child, Scan)
        assert node.names == ["name", "salary"]
        assert node.expressions[0].index == 1

    def test_star_expansion(self, analyzer):
        node = analyze(analyzer, "SELECT * FROM emp")
        assert len(node.expressions) == 5

    def test_qualified_star(self, analyzer):
        node = analyze(analyzer, "SELECT e.* FROM emp e JOIN dept d ON e.dept = d.dept")
        assert len(node.expressions) == 5

    def test_where_becomes_filter(self, analyzer):
        node = analyze(analyzer, "SELECT name FROM emp WHERE salary > 90")
        assert isinstance(node.child, Filter)

    def test_limit_and_order(self, analyzer):
        node = analyze(analyzer, "SELECT name FROM emp ORDER BY name DESC LIMIT 3")
        assert isinstance(node, LimitNode)
        assert isinstance(node.child, SortNode)
        assert node.child.ascending == [False]

    def test_distinct(self, analyzer):
        node = analyze(analyzer, "SELECT DISTINCT dept FROM emp")
        assert isinstance(node, DistinctNode)

    def test_missing_table(self, analyzer):
        with pytest.raises(SemanticError):
            analyze(analyzer, "SELECT x FROM ghost")

    def test_missing_column(self, analyzer):
        with pytest.raises(SemanticError):
            analyze(analyzer, "SELECT nope FROM emp")

    def test_ambiguous_column(self, analyzer):
        with pytest.raises(SemanticError):
            analyze(analyzer, "SELECT dept FROM emp e JOIN dept d ON e.dept = d.dept")

    def test_qualified_resolution(self, analyzer):
        node = analyze(analyzer, "SELECT d.dept FROM emp e JOIN dept d ON e.dept = d.dept")
        assert node.expressions[0].index == 5  # first column of the right side


class TestJoins:
    def test_equi_key_extraction(self, analyzer):
        node = analyze(
            analyzer, "SELECT name FROM emp e JOIN dept d ON e.dept = d.dept"
        ).child
        assert isinstance(node, JoinNode)
        assert len(node.left_keys) == 1 and len(node.right_keys) == 1
        assert node.right_keys[0].index == 0  # rebased to the right side
        assert node.residual is None

    def test_flipped_equality(self, analyzer):
        node = analyze(
            analyzer, "SELECT name FROM emp e JOIN dept d ON d.dept = e.dept"
        ).child
        assert collect_input_refs(node.left_keys[0]) == [2]

    def test_non_equi_stays_residual(self, analyzer):
        node = analyze(
            analyzer,
            "SELECT name FROM emp e JOIN dept d ON e.dept = d.dept AND e.salary < d.budget",
        ).child
        assert isinstance(node, JoinNode)
        assert node.residual is not None

    def test_side_pure_on_condition_pushed(self, analyzer):
        node = analyze(
            analyzer,
            "SELECT name FROM emp e JOIN dept d ON e.dept = d.dept AND e.salary > 90",
        ).child
        assert isinstance(node, JoinNode)
        assert isinstance(node.left, Filter)  # pushed below the join

    def test_where_pushdown_through_join(self, analyzer):
        node = analyze(
            analyzer,
            "SELECT name FROM emp e JOIN dept d ON e.dept = d.dept "
            "WHERE e.salary > 90 AND d.region = 'west'",
        )
        join = node.child
        assert isinstance(join, JoinNode)
        assert isinstance(join.left, Filter)
        assert isinstance(join.right, Filter)

    def test_left_join_right_conjunct_not_pushed(self, analyzer):
        node = analyze(
            analyzer,
            "SELECT name FROM emp e LEFT JOIN dept d ON e.dept = d.dept "
            "WHERE d.region IS NULL",
        )
        # anti-join pattern: the filter must run after the join
        assert isinstance(node.child, Filter)
        assert isinstance(node.child.child, JoinNode)

    def test_cross_join_no_keys(self, analyzer):
        node = analyze(analyzer, "SELECT name FROM emp CROSS JOIN dept").child
        assert isinstance(node, JoinNode)
        assert node.left_keys == []


class TestAggregation:
    def test_group_by_with_aggregates(self, analyzer):
        node = analyze(
            analyzer,
            "SELECT dept, count(*) c, avg(salary) a FROM emp GROUP BY dept",
        )
        agg = node.child
        assert isinstance(agg, AggregateNode)
        assert len(agg.calls) == 2
        assert agg.calls[0].argument is None  # COUNT(*)
        assert agg.calls[1].dtype is DataType.DOUBLE

    def test_expression_group_key(self, analyzer):
        node = analyze(
            analyzer,
            "SELECT year(hired), count(*) FROM emp GROUP BY year(hired)",
        )
        agg = node.child
        assert isinstance(agg, AggregateNode)
        # the select's year(hired) resolves to group position 0
        assert node.expressions[0].index == 0

    def test_having(self, analyzer):
        node = analyze(
            analyzer,
            "SELECT dept FROM emp GROUP BY dept HAVING count(*) > 1",
        )
        having = node.child
        assert isinstance(having, Filter)
        assert isinstance(having.child, AggregateNode)
        # HAVING adds the count aggregate even though it's not selected
        assert len(having.child.calls) == 1

    def test_global_aggregate(self, analyzer):
        node = analyze(analyzer, "SELECT sum(salary) FROM emp")
        agg = node.child
        assert isinstance(agg, AggregateNode)
        assert agg.group_expressions == []

    def test_same_aggregate_deduplicated(self, analyzer):
        node = analyze(
            analyzer,
            "SELECT sum(salary), sum(salary) * 2 FROM emp",
        )
        assert len(node.child.calls) == 1

    def test_bare_column_outside_group_rejected(self, analyzer):
        with pytest.raises(SemanticError):
            analyze(analyzer, "SELECT name, count(*) FROM emp GROUP BY dept")

    def test_aggregate_in_where_rejected(self, analyzer):
        with pytest.raises(SemanticError):
            analyze(analyzer, "SELECT dept FROM emp WHERE count(*) > 1 GROUP BY dept")

    def test_nested_aggregate_rejected(self, analyzer):
        with pytest.raises(SemanticError):
            analyze(analyzer, "SELECT sum(count(*)) FROM emp GROUP BY dept")

    def test_order_by_aggregate_alias(self, analyzer):
        node = analyze(
            analyzer,
            "SELECT dept, sum(salary) total FROM emp GROUP BY dept ORDER BY total DESC",
        )
        assert isinstance(node, SortNode)
        assert node.sort_expressions[0].index == 1

    def test_order_by_same_expression(self, analyzer):
        node = analyze(
            analyzer,
            "SELECT dept, sum(salary) FROM emp GROUP BY dept ORDER BY sum(salary)",
        )
        assert isinstance(node, SortNode)
        assert node.sort_expressions[0].index == 1

    def test_order_by_unknown_rejected(self, analyzer):
        with pytest.raises(SemanticError):
            analyze(analyzer, "SELECT dept FROM emp GROUP BY dept ORDER BY salary")


class TestSubqueries:
    def test_from_subquery_binding(self, analyzer):
        node = analyze(
            analyzer,
            "SELECT s.d FROM (SELECT dept AS d FROM emp) s",
        )
        assert node.names == ["d"]

    def test_subquery_join(self, analyzer):
        node = analyze(
            analyzer,
            "SELECT name FROM emp e JOIN (SELECT dept AS d FROM dept) x ON e.dept = x.d",
        )
        assert isinstance(node.child, JoinNode)


class TestHelpers:
    def test_shift_input_refs(self):
        expr = bexpr.Comparison("=", InputRef(2), InputRef(5))
        shifted = shift_input_refs(expr, -2)
        assert collect_input_refs(shifted) == [3, 0] or sorted(
            collect_input_refs(shifted)
        ) == [0, 3]
        # original untouched
        assert sorted(collect_input_refs(expr)) == [2, 5]

    def test_collect_refs_nested(self):
        expr = bexpr.LogicalAnd(operands=[
            bexpr.Comparison(">", InputRef(1), InputRef(4)),
            bexpr.IsNullExpr(operand=InputRef(7)),
        ])
        assert sorted(collect_input_refs(expr)) == [1, 4, 7]
