"""SQL semantics tests on the reference executor.

Every case checks the exact rows a query must produce — these pin the
behaviour the two simulated engines are later cross-checked against.
"""

import pytest


def rows(session, sql):
    return session.query(sql).rows


class TestProjectionsAndFilters:
    def test_expressions(self, local_session):
        out = rows(local_session, "SELECT name, salary / 2 FROM emp WHERE emp_id = 1")
        assert out == [("ann", 60.0)]

    def test_null_filtered_out_by_comparison(self, local_session):
        out = rows(local_session, "SELECT name FROM emp WHERE salary > 0")
        assert ("gus",) not in out  # NULL salary -> unknown -> dropped
        assert len(out) == 6

    def test_is_null(self, local_session):
        assert rows(local_session, "SELECT name FROM emp WHERE dept IS NULL") == [("fay",)]

    def test_in_and_between(self, local_session):
        out = rows(
            local_session,
            "SELECT name FROM emp WHERE dept IN ('hr', 'ops') AND salary BETWEEN 85 AND 95",
        )
        assert sorted(out) == [("cat",), ("dan",)]

    def test_like(self, local_session):
        out = rows(local_session, "SELECT name FROM emp WHERE name LIKE '%a%'")
        assert sorted(out) == [("ann",), ("cat",), ("dan",), ("fay",)]

    def test_case_when(self, local_session):
        out = rows(
            local_session,
            "SELECT name, CASE WHEN salary >= 100 THEN 'high' ELSE 'low' END "
            "FROM emp WHERE emp_id <= 3 ORDER BY emp_id",
        )
        assert out == [("ann", "high"), ("bob", "high"), ("cat", "low")]

    def test_scalar_functions(self, local_session):
        out = rows(
            local_session,
            "SELECT upper(name), year(hired), substr(name, 1, 2) FROM emp WHERE emp_id = 3",
        )
        assert out == [("CAT", 1999, "ca")]


class TestAggregation:
    def test_group_by(self, local_session):
        out = rows(
            local_session,
            "SELECT dept, count(*), sum(salary) FROM emp GROUP BY dept ORDER BY dept",
        )
        # NULL dept groups together, sorts first
        assert out == [
            (None, 1, 70.0),
            ("eng", 3, 220.0),
            ("hr", 1, 80.0),
            ("ops", 2, 185.0),
        ]

    def test_count_column_vs_star(self, local_session):
        out = rows(local_session, "SELECT count(*), count(salary) FROM emp")
        assert out == [(7, 6)]

    def test_avg_min_max(self, local_session):
        out = rows(
            local_session,
            "SELECT avg(salary), min(salary), max(salary) FROM emp WHERE dept = 'eng'",
        )
        assert out == [(pytest.approx(110.0), 100.0, 120.0)]

    def test_having(self, local_session):
        out = rows(
            local_session,
            "SELECT dept FROM emp GROUP BY dept HAVING count(*) >= 2 ORDER BY dept",
        )
        assert out == [("eng",), ("ops",)]

    def test_count_distinct(self, local_session):
        out = rows(local_session, "SELECT count(DISTINCT dept) FROM emp")
        assert out == [(3,)]  # NULL not counted

    def test_count_distinct_grouped(self, local_session):
        out = rows(
            local_session,
            "SELECT region, count(DISTINCT d.dept) FROM dept d GROUP BY region ORDER BY region",
        )
        assert out == [("east", 1), ("west", 2)]

    def test_aggregate_of_expression(self, local_session):
        out = rows(local_session, "SELECT sum(salary * 0.1) FROM emp WHERE dept = 'ops'")
        assert out == [(pytest.approx(18.5),)]

    def test_empty_group_result(self, local_session):
        out = rows(local_session, "SELECT dept, sum(salary) FROM emp WHERE salary > 1000 GROUP BY dept")
        assert out == []

    def test_global_aggregate_on_empty_input(self, local_session):
        out = rows(local_session, "SELECT count(*), sum(salary) FROM emp WHERE salary > 1000")
        assert out == [(0, None)]


class TestJoins:
    def test_inner_join(self, local_session):
        out = rows(
            local_session,
            "SELECT name, budget FROM emp e JOIN dept d ON e.dept = d.dept "
            "WHERE name = 'ann'",
        )
        assert out == [("ann", 1000.0)]

    def test_null_keys_do_not_match(self, local_session):
        out = rows(
            local_session,
            "SELECT name FROM emp e JOIN dept d ON e.dept = d.dept",
        )
        assert ("fay",) not in out  # NULL dept never matches
        assert ("eve",) not in out  # 'hr' has no dept row
        assert len(out) == 5

    def test_left_join_preserves(self, local_session):
        out = rows(
            local_session,
            "SELECT name, region FROM emp e LEFT JOIN dept d ON e.dept = d.dept "
            "ORDER BY name",
        )
        assert ("fay", None) in out
        assert len(out) == 7

    def test_anti_join_pattern(self, local_session):
        out = rows(
            local_session,
            "SELECT d.dept FROM dept d LEFT JOIN emp e ON d.dept = e.dept "
            "WHERE e.emp_id IS NULL",
        )
        assert out == [("fin",)]

    def test_join_then_aggregate(self, local_session):
        out = rows(
            local_session,
            "SELECT region, count(*) FROM emp e JOIN dept d ON e.dept = d.dept "
            "GROUP BY region ORDER BY region",
        )
        assert out == [("east", 2), ("west", 3)]

    def test_cross_join(self, local_session):
        out = rows(local_session, "SELECT count(*) FROM emp CROSS JOIN dept")
        assert out == [(21,)]

    def test_self_join_with_aliases(self, local_session):
        out = rows(
            local_session,
            "SELECT a.name, b.name FROM emp a JOIN emp b ON a.dept = b.dept "
            "WHERE a.emp_id < b.emp_id AND a.dept = 'ops'",
        )
        assert out == [("cat", "dan")]

    def test_three_way_join(self, local_session, warehouse):
        hdfs, metastore = warehouse
        from repro.common.rows import Schema

        bonus = Schema.parse("dept string, bonus double")
        table = metastore.create_table("bonus", bonus)
        hdfs.write(f"{table.location}/p", bonus, [("eng", 10.0), ("ops", 5.0)], scale=10.0)
        out = rows(
            local_session,
            "SELECT name, budget, bonus FROM emp e JOIN dept d ON e.dept = d.dept "
            "JOIN bonus b ON e.dept = b.dept WHERE name = 'cat'",
        )
        assert out == [("cat", 500.0, 5.0)]


class TestOrderingAndLimits:
    def test_order_desc_with_limit(self, local_session):
        out = rows(
            local_session,
            "SELECT name, salary FROM emp WHERE salary IS NOT NULL "
            "ORDER BY salary DESC LIMIT 3",
        )
        assert out == [("ann", 120.0), ("bob", 100.0), ("dan", 95.0)]

    def test_multi_key_order(self, local_session):
        out = rows(
            local_session,
            "SELECT dept, name FROM emp WHERE dept IS NOT NULL ORDER BY dept DESC, name",
        )
        assert out[0] == ("ops", "cat")
        assert out[-1] == ("eng", "gus")

    def test_nulls_first_ascending(self, local_session):
        out = rows(local_session, "SELECT dept FROM emp GROUP BY dept ORDER BY dept")
        assert out[0] == (None,)

    def test_limit_without_order(self, local_session):
        out = rows(local_session, "SELECT name FROM emp LIMIT 2")
        assert len(out) == 2

    def test_distinct(self, local_session):
        out = rows(local_session, "SELECT DISTINCT region FROM dept")
        assert sorted(out) == [("east",), ("west",)]

    def test_distinct_with_order(self, local_session):
        out = rows(local_session, "SELECT DISTINCT dept FROM emp ORDER BY dept DESC LIMIT 2")
        assert out == [("ops",), ("hr",)]


class TestSubqueries:
    def test_derived_table(self, local_session):
        out = rows(
            local_session,
            "SELECT d, total FROM (SELECT dept d, sum(salary) total FROM emp "
            "GROUP BY dept) t WHERE total > 100 ORDER BY total DESC",
        )
        assert out == [("eng", 220.0), ("ops", 185.0)]

    def test_subquery_join(self, local_session):
        out = rows(
            local_session,
            "SELECT e.name FROM emp e JOIN (SELECT dept FROM dept WHERE region = 'east') x "
            "ON e.dept = x.dept ORDER BY e.name",
        )
        assert out == [("cat",), ("dan",)]
