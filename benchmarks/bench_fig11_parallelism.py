"""Fig 11 — TPC-H 40 GB ORC breakdown: default vs enhanced parallelism.

Paper (§IV-D, §V-C):

* enhanced parallelism (#A = #O, last stage 1) improves Hadoop by ~14 %
  and DataMPI by ~23 % on average;
* Q9 improves ~42 % (Hadoop) / ~56 % (DataMPI) because higher reduce
  parallelism spreads its skewed keys (default 16 A tasks saw a 13x
  max/min record skew; 28 A tasks only ~4x);
* queries like Q1/Q6/Q11/Q14 barely change (their stages already run at
  the same parallelism);
* with enhanced on both sides, DataMPI beats Hadoop by ~29 % on average.
"""

from benchhelpers import emit, results_path, run_once

from repro.bench import fresh_tpch, improvement_percent, run_script
from repro.reporting.figures import write_csv
from repro.workloads.tpch import TPCH_QUERY_IDS, tpch_query

SF = 40
SAMPLE = 5000
CASES = [("hadoop", "default", "h"), ("hadoop", "enhanced", "H"),
         ("datampi", "default", "d"), ("datampi", "enhanced", "D")]


def _reduce_skew(run):
    """Load skew on the biggest-shuffle job: (max/mean bytes per reduce
    task, max bytes, #reducers).  The paper's §IV-D anecdote is the same
    phenomenon: more A tasks spread the skewed keys, shrinking the
    heaviest task's share (13x max/min at 16 tasks -> 4x at 28)."""
    biggest = None
    for result in run.results:
        if result.execution is None:
            continue
        for job in result.execution.jobs:
            if biggest is None or job.shuffle_logical_bytes > biggest.shuffle_logical_bytes:
                biggest = job
    if biggest is None:
        return 1.0, 0.0, 0
    reducers = [t for t in biggest.tasks if t.kind in ("reduce", "a")]
    loads = [t.kv_bytes for t in reducers]
    if not loads or sum(loads) == 0:
        return 1.0, 0.0, 0
    mean = sum(loads) / len(loads)
    return max(loads) / mean, max(loads), biggest.num_reducers


def _experiment():
    hdfs, metastore = fresh_tpch(SF, lineitem_sample=SAMPLE, format_name="orc")
    table = {tag: [] for _e, _m, tag in CASES}
    q9_skew = {}
    for query in TPCH_QUERY_IDS:
        script = tpch_query(query, SF)
        for engine, mode, tag in CASES:
            run = run_script(engine, hdfs, metastore, script,
                             conf={"hive.datampi.parallelism": mode})
            table[tag].append(run.breakdown.total)
            if query == 9:
                q9_skew[(engine, mode)] = _reduce_skew(run)
    return table, q9_skew


def test_fig11_parallelism_strategies(benchmark):
    table, q9_skew = run_once(benchmark, _experiment)

    header = "case " + "".join(f"{'Q%d' % q:>9}" for q in TPCH_QUERY_IDS)
    lines = ["== Fig 11: default(h/d) vs enhanced(H/D), 40 GB ORC (seconds) ==",
             header, "-" * len(header)]
    for tag in ("h", "H", "d", "D"):
        lines.append(f"{tag:<5}" + "".join(f"{v:>9.1f}" for v in table[tag]))
    emit("\n".join(lines))
    write_csv(results_path("fig11_parallelism.csv"),
              ["case"] + [f"q{q}" for q in TPCH_QUERY_IDS],
              [[tag] + [round(v, 2) for v in table[tag]] for tag in table])

    avg = lambda xs: sum(xs) / len(xs)
    hadoop_gain = [improvement_percent(h, H) for h, H in zip(table["h"], table["H"])]
    datampi_gain = [improvement_percent(d, D) for d, D in zip(table["d"], table["D"])]
    cross = [improvement_percent(H, D) for H, D in zip(table["H"], table["D"])]
    emit(f"enhanced gain: Hadoop {avg(hadoop_gain):.1f}% (paper ~14%), "
         f"DataMPI {avg(datampi_gain):.1f}% (paper ~23%)")
    emit(f"DataMPI over Hadoop (both enhanced): {avg(cross):.1f}% (paper ~29%)")

    q9_index = TPCH_QUERY_IDS.index(9)
    q9_h = improvement_percent(table["h"][q9_index], table["H"][q9_index])
    q9_d = improvement_percent(table["d"][q9_index], table["D"][q9_index])
    emit(f"Q9 enhanced gain: Hadoop {q9_h:.1f}% (paper ~42%), DataMPI {q9_d:.1f}% (paper ~56%)")
    for (engine, mode), (ratio, max_load, reducers) in sorted(q9_skew.items()):
        emit(f"Q9 {engine}/{mode}: heaviest reduce task {max_load / 2**20:.0f} MB "
             f"({ratio:.2f}x the mean) across {reducers} reduce tasks "
             "(paper: 13x max/min at 16 tasks -> 4x at 28)")

    # shape assertions
    assert avg(hadoop_gain) > 5.0 and avg(datampi_gain) > 5.0
    assert q9_h > 20.0 and q9_d > 25.0, "Q9 must benefit strongly"
    assert avg(cross) > 15.0
    flat = [TPCH_QUERY_IDS.index(q) for q in (1, 6, 14)]
    for index in flat:
        assert abs(improvement_percent(table["d"][index], table["D"][index])) < 25.0, \
            f"Q{TPCH_QUERY_IDS[index]} should not change much under enhanced mode"
    default_max = q9_skew[("datampi", "default")][1]
    enhanced_max = q9_skew[("datampi", "enhanced")][1]
    assert enhanced_max <= default_max, \
        "more A tasks must shrink the heaviest task's load"
