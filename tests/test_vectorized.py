"""Vectorized execution: dual-mode equivalence and ColumnBatch semantics.

The vectorized map pipeline (``repro.exec.vectorized``) must be
indistinguishable from the row pipeline: same rows in the same order on
every engine, same shuffle pair sizes.  The first half of this module
replays a query corpus (plus a hypothesis-generated stream) through both
modes and asserts identical results; the second half unit-tests the
selection-vector contract of :class:`~repro.common.rows.ColumnBatch`
(nulls, empty batches, batch-boundary LIMIT, zero-copy windows) and the
byte accounting of the fused sink kernel.
"""

import random
from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import HDFS, Metastore, connect
from repro.common.errors import ExecutionError
from repro.common.kv import KeyValue
from repro.common.rows import ColumnBatch, Schema
from repro.engines.base import compare_result_rows
from repro.exec.expressions import InputRef, codegen_sink_kernel
from repro.exec.operators import LimitDesc
from repro.exec.vectorized import VectorLimitOperator, build_vector_pipeline

SCHEMA = Schema.parse("k int, grp string, val double, flag boolean")
DIM_SCHEMA = Schema.parse("grp string, weight int")


def _build_store():
    rng = random.Random(20260806)
    rows = [
        (
            i,
            f"g{rng.randrange(8)}",
            round(rng.uniform(-50, 50), 2) if rng.random() > 0.05 else None,
            rng.random() > 0.5,
        )
        for i in range(400)
    ]
    dims = [(f"g{i}", i * 10) for i in range(6)]  # g6, g7 unmatched
    hdfs = HDFS(num_workers=7)
    metastore = Metastore(hdfs)
    # same data in a row format (scan_batch adapter path) and in ORC
    # (native columnar stripe path) so both producers are exercised
    table = metastore.create_table("f", SCHEMA, format_name="sequence")
    hdfs.write(f"{table.location}/p0", SCHEMA, rows[:200], "sequence", scale=5e4)
    hdfs.write(f"{table.location}/p1", SCHEMA, rows[200:], "sequence", scale=5e4)
    orc = metastore.create_table("fo", SCHEMA, format_name="orc")
    hdfs.write(f"{orc.location}/p0", SCHEMA, rows[:200], "orc", scale=5e4)
    hdfs.write(f"{orc.location}/p1", SCHEMA, rows[200:], "orc", scale=5e4)
    dim = metastore.create_table("d", DIM_SCHEMA)
    hdfs.write(f"{dim.location}/p0", DIM_SCHEMA, dims, scale=10.0)
    return hdfs, metastore


_STORE = _build_store()

# deterministic corpus: one query per vectorized operator/shape, each
# over the row-format table and its ORC twin
_CORPUS = [
    "SELECT k, grp, val FROM {t} WHERE val > 0 ORDER BY k LIMIT 40",
    "SELECT k, val * 2.0, grp FROM {t} WHERE k BETWEEN 50 AND 250 "
    "ORDER BY k DESC LIMIT 25",
    "SELECT grp, count(*), sum(val), min(k), max(val), avg(val), count(val) "
    "FROM {t} GROUP BY grp ORDER BY grp",
    "SELECT grp, count(*) FROM {t} WHERE val IS NOT NULL AND flag "
    "GROUP BY grp ORDER BY grp",
    "SELECT weight, count(*), sum(val) FROM {t} JOIN d ON {t}.grp = d.grp "
    "WHERE k % 2 = 0 GROUP BY weight ORDER BY weight",
    "SELECT weight, count(*) FROM {t} LEFT JOIN d ON {t}.grp = d.grp "
    "GROUP BY weight ORDER BY weight",
    "SELECT grp, count(*) FROM {t} WHERE grp LIKE 'g%' AND NOT (grp = 'g0') "
    "GROUP BY grp ORDER BY grp",
    "SELECT grp, count(*) FROM {t} "
    "WHERE grp IN (SELECT grp FROM d WHERE weight >= 20) "
    "GROUP BY grp ORDER BY grp",
    "SELECT grp, count(*) c FROM ("
    "  SELECT grp FROM {t} WHERE val > 0 UNION ALL SELECT grp FROM d"
    ") u GROUP BY grp ORDER BY grp",
    "SELECT CASE WHEN val > 0 THEN 'pos' ELSE 'neg' END s, count(*) "
    "FROM {t} WHERE val IS NOT NULL "
    "GROUP BY CASE WHEN val > 0 THEN 'pos' ELSE 'neg' END "
    "ORDER BY CASE WHEN val > 0 THEN 'pos' ELSE 'neg' END",
]


def _run(engine, sql, vectorized):
    hdfs, metastore = _STORE
    session = connect(
        engine=engine, hdfs=hdfs, metastore=metastore,
        conf={"repro.exec.vectorized": "true" if vectorized else "false"},
    )
    return session.query(sql).rows


@pytest.mark.parametrize("engine", ["hadoop", "datampi"])
@pytest.mark.parametrize("table", ["f", "fo"])
def test_corpus_modes_agree(engine, table):
    for template in _CORPUS:
        sql = template.format(t=table)
        expected = _run(engine, sql, vectorized=False)
        actual = _run(engine, sql, vectorized=True)
        assert compare_result_rows(expected, actual, ordered=True), (
            f"{engine}/{table} modes disagree on: {sql}\n"
            f"row-mode {expected[:5]}... vector-mode {actual[:5]}..."
        )


_columns = st.sampled_from(["k", "grp", "val", "flag"])
_aggs = st.sampled_from(
    ["count(*)", "sum(val)", "avg(val)", "min(k)", "max(val)", "count(val)"]
)
_filters = st.sampled_from([
    "k < 200", "val > 0", "grp IN ('g1', 'g3', 'g5')", "grp LIKE 'g%'",
    "val IS NOT NULL", "flag", "k BETWEEN 100 AND 300",
    "NOT (grp = 'g0')", "val > 0 AND k % 2 = 0",
])


@st.composite
def queries(draw):
    table = draw(st.sampled_from(["f", "fo"]))
    kind = draw(st.sampled_from(["project", "aggregate", "join"]))
    if kind == "join":
        # join scope sees both tables: keep filter columns qualified
        join_filter = draw(st.sampled_from([
            "", "k < 200", "val > 0", f"{table}.grp IN ('g1', 'g3', 'g5')",
            "val IS NOT NULL", "flag", "k BETWEEN 100 AND 300",
        ]))
        where = f" WHERE {join_filter}" if join_filter else ""
        return (
            f"SELECT weight, {draw(_aggs)} AS m "
            f"FROM {table} JOIN d ON {table}.grp = d.grp{where} "
            "GROUP BY weight ORDER BY weight"
        )
    where = f" WHERE {draw(_filters)}" if draw(st.booleans()) else ""
    if kind == "project":
        cols = draw(st.lists(_columns, min_size=1, max_size=3, unique=True))
        limit = draw(st.integers(min_value=1, max_value=40))
        return (
            f"SELECT {', '.join(cols)} FROM {table}{where} "
            f"ORDER BY {', '.join(cols)} DESC, k LIMIT {limit}"
        )
    return (
        f"SELECT grp, {draw(_aggs)} AS m FROM {table}{where} "
        "GROUP BY grp ORDER BY grp"
    )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(sql=queries())
def test_fuzz_modes_agree(sql):
    expected = _run("datampi", sql, vectorized=False)
    actual = _run("datampi", sql, vectorized=True)
    assert compare_result_rows(expected, actual, ordered=True), (
        f"modes disagree on: {sql}\nrow-mode {expected[:5]}... "
        f"vector-mode {actual[:5]}..."
    )


# ---------------------------------------------------------------------------
# ColumnBatch selection-vector semantics
# ---------------------------------------------------------------------------

def _batch():
    return ColumnBatch.from_rows(
        [(1, "a", None), (2, None, 1.5), (3, "c", -2.0), (4, "d", None)]
    )


def test_nulls_live_in_columns_and_null_mask():
    batch = _batch()
    assert batch.columns[2] == [None, 1.5, -2.0, None]
    assert batch.null_mask(2) == [True, False, False, True]
    assert batch.null_mask(0) == [False] * 4
    # NULLs survive selection + materialization untouched
    assert batch.with_selection([1, 3]).to_rows() == [
        (2, None, 1.5), (4, "d", None)
    ]


def test_empty_batches():
    empty = ColumnBatch.from_rows([], width=3)
    assert empty.size == 0 and empty.width == 3
    assert empty.live_count == 0
    assert empty.to_rows() == []
    # an emptied selection keeps the columns but exposes no rows
    drained = _batch().with_selection([])
    assert drained.live_count == 0 and drained.to_rows() == []


def test_selection_vector_is_zero_copy():
    batch = _batch()
    narrowed = batch.with_selection([0, 2])
    assert narrowed.columns is batch.columns
    assert narrowed.live_count == 2
    assert narrowed.to_rows() == [(1, "a", None), (3, "c", -2.0)]
    # selection order is preserved, not re-sorted
    assert batch.with_selection([2, 0]).to_rows() == [
        (3, "c", -2.0), (1, "a", None)
    ]


def test_take_first_semantics():
    batch = _batch()
    assert batch.take_first(10) is batch  # no-op beyond live_count
    assert batch.take_first(2).to_rows() == [(1, "a", None), (2, None, 1.5)]
    narrowed = batch.with_selection([1, 2, 3])
    assert narrowed.take_first(2).to_rows() == [(2, None, 1.5), (3, "c", -2.0)]


class _CollectingSink:
    def __init__(self):
        self.rows = []

    def process_batch(self, batch):
        self.rows.extend(batch.to_rows())

    def close(self):
        pass


def test_limit_across_batch_boundaries():
    sink = _CollectingSink()
    limit = VectorLimitOperator(LimitDesc(limit=5), sink)
    limit.process_batch(ColumnBatch.from_rows([(1,), (2,), (3,)]))
    limit.process_batch(ColumnBatch.from_rows([(4,), (5,), (6,)]))
    limit.process_batch(ColumnBatch.from_rows([(7,)]))  # past the limit
    limit.close()
    assert sink.rows == [(1,), (2,), (3,), (4,), (5,)]


def test_window_slices_are_zero_copy():
    batch = _batch()
    window = batch[1:3]
    assert window.columns is batch.columns  # shared, nothing copied
    assert len(window) == 2
    assert window.sel == range(1, 3)
    assert window.to_rows() == [(2, None, 1.5), (3, "c", -2.0)]
    assert batch[0:4] is batch  # full-range slice is the identity


def test_window_slice_contract_violations():
    batch = _batch()
    with pytest.raises(ExecutionError):
        batch[1]  # only slices mirror the row-list protocol
    with pytest.raises(ExecutionError):
        batch[0:4:2]  # windows must be contiguous
    with pytest.raises(ExecutionError):
        batch.with_selection([0, 2])[0:1]  # windows index original columns


def test_build_vector_pipeline_rejects_unknown_plans():
    assert build_vector_pipeline([], None) is None
    assert build_vector_pipeline([LimitDesc(limit=1)], None) is None


# ---------------------------------------------------------------------------
# fused sink kernel: byte accounting must match the kv serde exactly
# ---------------------------------------------------------------------------

def test_sink_kernel_sizes_match_serde():
    # exercise every inline branch: ascii/non-ascii str, int, float,
    # None, both bools — in keys and values
    rows = [
        (1, "ascii", 1.5, None, True),
        (2, "héllo", -2.0, "x", False),
        (3, "", 0.25, None, True),
    ]
    batch = ColumnBatch.from_rows(rows)
    refs = [InputRef(i) for i in range(5)]
    kernel = codegen_sink_kernel(refs[:2], refs[2:], tag=0)
    assert kernel is not None

    collected = []

    def collect_batch(partitions, pairs):
        collected.extend(zip(partitions, pairs))

    histogram = Counter()
    count, nbytes = kernel(
        batch.columns, range(batch.size), 4, collect_batch, histogram
    )
    assert count == len(rows)
    assert len(collected) == len(rows)
    total = 0
    for (partition, pair), row in zip(collected, rows):
        assert 0 <= partition < 4
        assert pair.key == row[:2]
        assert pair.value == (0,) + row[2:]
        # the memoized size the kernel pre-seeded must equal what the
        # serde would compute from scratch for the same pair
        fresh = KeyValue(pair.key, pair.value).serialized_size()
        assert pair.serialized_size() == fresh
        total += fresh
    assert nbytes == total
    assert histogram == Counter(
        KeyValue(row[:2], (0,) + row[2:]).serialized_size() for row in rows
    )
