"""Deterministic streaming sketches backing table/column statistics.

Two sketches, both chosen for properties the optimizer tests pin down:

* :class:`KMVSketch` — k-minimum-values distinct counting.  The state is
  the ``k`` smallest 64-bit hashes seen, so merging is *exactly*
  associative and commutative (the k smallest of a union is the k
  smallest of the per-block k-smallest sets) and the estimate is exact
  while fewer than ``k`` distinct values were observed.  Beyond that the
  standard estimator ``(k-1) / R_k`` applies, with relative standard
  error ``~ 1/sqrt(k-2)`` (about 6% at the default k=256).

* :class:`SpaceSavingSketch` — Metwally et al.'s heavy-hitter summary.
  Worst-case guarantees (not probabilistic): estimates never
  undercount, overcount by at most ``N / capacity`` observations, and
  any value with true frequency above ``N / capacity`` is present in
  the summary.  Merging sums matching counters and charges each side's
  minimum counter for values the other side dropped, preserving both
  bounds; merge results are bit-identical regardless of association
  order while no summary has hit capacity.

Hashing goes through BLAKE2b over the shuffle serde's canonical byte
encoding — Python's builtin ``hash`` is salted per process, which would
make stats (and every plan decision derived from them) differ between
runs.
"""

from __future__ import annotations

import hashlib
import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.kv import serialize_fields

HASH_SPACE = float(2**64)

DEFAULT_NDV_K = 256
DEFAULT_HEAVY_CAPACITY = 64


def value_hash64(value: object) -> int:
    """Deterministic 64-bit hash of one column value.

    The value is encoded with the shuffle serde (type-tagged, so ``1``
    and ``1.0`` hash differently) and digested with BLAKE2b; stable
    across processes, platforms and PYTHONHASHSEED.
    """
    digest = hashlib.blake2b(
        serialize_fields((value,)), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def value_order_key(value: object) -> bytes:
    """Canonical byte key used for deterministic tie-breaking."""
    return serialize_fields((value,))


class KMVSketch:
    """K-minimum-values NDV sketch over 64-bit hashes."""

    __slots__ = ("k", "_heap", "_members")

    def __init__(self, k: int = DEFAULT_NDV_K):
        if k < 2:
            raise ValueError("KMV sketch needs k >= 2")
        self.k = k
        self._heap: List[int] = []  # max-heap of kept hashes (negated)
        self._members: set = set()

    def add(self, value: object) -> None:
        self.add_hash(value_hash64(value))

    def add_hash(self, hashed: int) -> None:
        members = self._members
        if hashed in members:
            return
        heap = self._heap
        if len(heap) < self.k:
            heapq.heappush(heap, -hashed)
            members.add(hashed)
        elif hashed < -heap[0]:
            evicted = -heapq.heapreplace(heap, -hashed)
            members.discard(evicted)
            members.add(hashed)

    def merge(self, other: "KMVSketch") -> "KMVSketch":
        """New sketch over the union of both inputs (exactly associative)."""
        if self.k != other.k:
            raise ValueError(
                f"cannot merge KMV sketches of different k ({self.k} vs {other.k})"
            )
        merged = KMVSketch(self.k)
        for hashed in self._members:
            merged.add_hash(hashed)
        for hashed in other._members:
            merged.add_hash(hashed)
        return merged

    def estimate(self) -> float:
        """Estimated number of distinct values (exact below capacity)."""
        kept = len(self._members)
        if kept < self.k:
            return float(kept)
        kth = -self._heap[0]  # k-th smallest hash seen
        if kth <= 0:
            return float(kept)
        return (self.k - 1) * HASH_SPACE / kth

    def state(self) -> Tuple[int, Tuple[int, ...]]:
        """Canonical state for equality/round-trip checks."""
        return (self.k, tuple(sorted(self._members)))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, KMVSketch) and self.state() == other.state()

    def __hash__(self):
        return hash(self.state())

    def __repr__(self) -> str:
        return f"KMVSketch(k={self.k}, kept={len(self._members)})"


class SpaceSavingSketch:
    """Space-Saving heavy-hitter summary with deterministic eviction."""

    __slots__ = ("capacity", "total", "_counts", "_errors")

    def __init__(self, capacity: int = DEFAULT_HEAVY_CAPACITY):
        if capacity < 1:
            raise ValueError("Space-Saving sketch needs capacity >= 1")
        self.capacity = capacity
        self.total = 0  # observations seen (sum of add counts)
        self._counts: Dict[object, int] = {}
        self._errors: Dict[object, int] = {}

    def add(self, value: object, count: int = 1) -> None:
        if count <= 0:
            return
        self.total += count
        counts = self._counts
        if value in counts:
            counts[value] += count
            return
        if len(counts) < self.capacity:
            counts[value] = count
            self._errors[value] = 0
            return
        victim = self._min_item()
        floor = counts.pop(victim)
        self._errors.pop(victim)
        counts[value] = floor + count
        self._errors[value] = floor

    def _min_item(self) -> object:
        """Counter with the smallest count; ties broken on canonical
        value bytes so eviction order never depends on insertion order."""
        return min(
            self._counts, key=lambda v: (self._counts[v], value_order_key(v))
        )

    # -- queries ------------------------------------------------------------
    def estimate(self, value: object) -> int:
        """Estimated observation count (0 ≤ overcount ≤ total/capacity)."""
        return self._counts.get(value, 0)

    def error(self, value: object) -> int:
        """Upper bound on how much :meth:`estimate` overcounts *value*."""
        return self._errors.get(value, 0)

    def share(self, value: object) -> Optional[float]:
        """Observed share of *value*, or ``None`` when it is not tracked
        (its true share is then at most ``1/capacity``)."""
        if self.total <= 0:
            return None
        count = self._counts.get(value)
        if count is None:
            return None
        return count / self.total

    def heavy_hitters(self, min_share: float) -> List[Tuple[object, float]]:
        """``(value, observed share)`` for every tracked value whose share
        reaches *min_share*, heaviest first (deterministic order)."""
        if self.total <= 0:
            return []
        out = [
            (value, count / self.total)
            for value, count in self._counts.items()
            if count / self.total >= min_share
        ]
        out.sort(key=lambda item: (-item[1], value_order_key(item[0])))
        return out

    def items(self) -> List[Tuple[object, int, int]]:
        """All tracked ``(value, count, error)`` triples, heaviest first."""
        return sorted(
            (
                (value, count, self._errors[value])
                for value, count in self._counts.items()
            ),
            key=lambda item: (-item[1], value_order_key(item[0])),
        )

    def merge(self, other: "SpaceSavingSketch") -> "SpaceSavingSketch":
        """Combined summary preserving the no-undercount / N/capacity
        overcount bounds.  A value one side dropped is charged that
        side's minimum counter (its count there cannot exceed it)."""
        if self.capacity != other.capacity:
            raise ValueError(
                "cannot merge Space-Saving sketches of different capacity "
                f"({self.capacity} vs {other.capacity})"
            )
        floor_self = (
            min(self._counts.values())
            if len(self._counts) >= self.capacity else 0
        )
        floor_other = (
            min(other._counts.values())
            if len(other._counts) >= other.capacity else 0
        )
        combined: Dict[object, Tuple[int, int]] = {}
        for value in set(self._counts) | set(other._counts):
            count = error = 0
            if value in self._counts:
                count += self._counts[value]
                error += self._errors[value]
            else:
                count += floor_self
                error += floor_self
            if value in other._counts:
                count += other._counts[value]
                error += other._errors[value]
            else:
                count += floor_other
                error += floor_other
            combined[value] = (count, error)
        merged = SpaceSavingSketch(self.capacity)
        merged.total = self.total + other.total
        survivors = sorted(
            combined.items(),
            key=lambda item: (-item[1][0], value_order_key(item[0])),
        )[: self.capacity]
        for value, (count, error) in survivors:
            merged._counts[value] = count
            merged._errors[value] = error
        return merged

    def state(self) -> tuple:
        return (
            self.capacity,
            self.total,
            tuple(
                sorted(
                    ((value_order_key(v), c, self._errors[v])
                     for v, c in self._counts.items())
                )
            ),
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SpaceSavingSketch) and self.state() == other.state()
        )

    def __hash__(self):
        return hash(self.state())

    def __repr__(self) -> str:
        return (
            f"SpaceSavingSketch(capacity={self.capacity}, "
            f"tracked={len(self._counts)}, total={self.total})"
        )


def kmv_from_values(values: Iterable[object], k: int = DEFAULT_NDV_K) -> KMVSketch:
    sketch = KMVSketch(k)
    for value in values:
        sketch.add(value)
    return sketch


def spacesaving_from_values(
    values: Iterable[object], capacity: int = DEFAULT_HEAVY_CAPACITY
) -> SpaceSavingSketch:
    sketch = SpaceSavingSketch(capacity)
    for value in values:
        sketch.add(value)
    return sketch
