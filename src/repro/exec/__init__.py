"""Runtime execution layer shared by both engines.

* :mod:`repro.exec.expressions` — bound (index-resolved) expressions
  compiled to closures, with Hive's three-valued NULL logic.
* :mod:`repro.exec.operators` — push-style map-side operators
  (Filter/Select/ReduceSink/FileSink/map GroupBy/MapJoin) mirroring
  Hive's physical operators.
* :mod:`repro.exec.reduce` — reduce-side logics (aggregate, join, sort,
  identity) consuming grouped key/values.
* :mod:`repro.exec.mapper` — ExecMapper/ExecReducer drivers: the
  engine-independent task bodies (paper §IV-B keeps these identical
  between Hadoop and DataMPI).
"""

from repro.exec.expressions import (
    BoundExpression,
    InputRef,
    Const,
    compile_expression,
    stable_hash,
)
from repro.exec.mapper import ExecMapper, ExecReducer, MapTaskResult

__all__ = [
    "BoundExpression",
    "InputRef",
    "Const",
    "compile_expression",
    "stable_hash",
    "ExecMapper",
    "ExecReducer",
    "MapTaskResult",
]
