"""Tests for the second-wave SQL features: IN-subquery, ORDER BY
ordinal, INSERT INTO, map-output compression."""

import pytest

from repro import connect
from repro.common.config import Configuration
from repro.common.errors import SemanticError
from repro.engines.base import compare_result_rows
from repro.sql import ast, parse_statement


class TestInSubqueryParsing:
    def test_parsed(self):
        stmt = parse_statement("SELECT a FROM t WHERE a IN (SELECT b FROM u)")
        assert isinstance(stmt.where, ast.InSubquery)

    def test_not_in(self):
        stmt = parse_statement("SELECT a FROM t WHERE a NOT IN (SELECT b FROM u)")
        assert stmt.where.negated

    def test_literal_in_still_works(self):
        stmt = parse_statement("SELECT a FROM t WHERE a IN (1, 2)")
        assert isinstance(stmt.where, ast.InList)


class TestInSubqueryExecution:
    def test_semi_join(self, local_session):
        rows = local_session.query(
            "SELECT name FROM emp WHERE dept IN "
            "(SELECT dept FROM dept WHERE region = 'east') ORDER BY name"
        ).rows
        assert rows == [("cat",), ("dan",)]

    def test_semi_join_no_duplication(self, local_session):
        # multiple employees share a dept; the rewrite must not multiply rows
        rows = local_session.query(
            "SELECT count(*) FROM emp WHERE dept IN (SELECT dept FROM dept)"
        ).rows
        assert rows == [(5,)]

    def test_anti_join(self, local_session):
        rows = local_session.query(
            "SELECT d.dept FROM dept d WHERE d.dept NOT IN "
            "(SELECT dept FROM emp WHERE dept IS NOT NULL)"
        ).rows
        assert rows == [("fin",)]

    def test_combined_with_other_predicates(self, local_session):
        rows = local_session.query(
            "SELECT name FROM emp WHERE salary > 85 AND dept IN "
            "(SELECT dept FROM dept WHERE budget >= 500) ORDER BY name"
        ).rows
        assert rows == [("ann",), ("bob",), ("cat",), ("dan",)]

    def test_expression_operand(self, local_session):
        rows = local_session.query(
            "SELECT name FROM emp WHERE upper(dept) IN "
            "(SELECT upper(dept) FROM dept WHERE region = 'east')"
        ).rows
        assert sorted(rows) == [("cat",), ("dan",)]

    def test_multi_column_subquery_rejected(self, local_session):
        with pytest.raises(SemanticError):
            local_session.query(
                "SELECT name FROM emp WHERE dept IN (SELECT dept, budget FROM dept)"
            )

    def test_nested_in_or_rejected(self, local_session):
        with pytest.raises(SemanticError):
            local_session.query(
                "SELECT name FROM emp WHERE salary > 999 OR dept IN (SELECT dept FROM dept)"
            )

    def test_cross_engine(self, warehouse):
        hdfs, metastore = warehouse
        sql = (
            "SELECT name FROM emp WHERE dept IN "
            "(SELECT dept FROM dept WHERE region = 'west') ORDER BY name"
        )
        rows = {}
        for engine in ("local", "hadoop", "datampi"):
            session = connect(engine=engine, hdfs=hdfs, metastore=metastore)
            rows[engine] = session.query(sql).rows
        assert rows["local"] == rows["hadoop"] == rows["datampi"]


class TestOrderByOrdinal:
    def test_basic(self, local_session):
        rows = local_session.query(
            "SELECT name, salary FROM emp WHERE salary IS NOT NULL ORDER BY 2 DESC LIMIT 2"
        ).rows
        assert rows == [("ann", 120.0), ("bob", 100.0)]

    def test_multiple_ordinals(self, local_session):
        rows = local_session.query(
            "SELECT dept, name FROM emp WHERE dept IS NOT NULL ORDER BY 1, 2 DESC LIMIT 2"
        ).rows
        assert rows == [("eng", "gus"), ("eng", "bob")]

    def test_out_of_range(self, local_session):
        with pytest.raises(SemanticError):
            local_session.query("SELECT name FROM emp ORDER BY 3")


class TestInsertInto:
    def test_append_accumulates(self, local_session):
        local_session.execute("CREATE TABLE sink (a string)")
        local_session.execute("INSERT INTO TABLE sink SELECT name FROM emp WHERE dept = 'hr'")
        local_session.execute("INSERT INTO TABLE sink SELECT name FROM emp WHERE dept = 'ops'")
        assert local_session.query("SELECT count(*) FROM sink").rows == [(3,)]

    def test_overwrite_still_replaces(self, local_session):
        local_session.execute("CREATE TABLE sink (a string)")
        local_session.execute("INSERT INTO TABLE sink SELECT name FROM emp")
        local_session.execute("INSERT OVERWRITE TABLE sink SELECT name FROM emp WHERE dept = 'hr'")
        assert local_session.query("SELECT count(*) FROM sink").rows == [(1,)]

    def test_append_on_engines(self, warehouse):
        hdfs, metastore = warehouse
        session = connect(engine="datampi", hdfs=hdfs, metastore=metastore)
        session.execute("CREATE TABLE sink2 (a string)")
        session.execute("INSERT INTO TABLE sink2 SELECT name FROM emp WHERE dept = 'eng'")
        session.execute("INSERT INTO TABLE sink2 SELECT name FROM emp WHERE dept = 'hr'")
        assert session.query("SELECT count(*) FROM sink2").rows == [(4,)]


class TestMapOutputCompression:
    SQL = "SELECT grp, sum(val) FROM facts GROUP BY grp ORDER BY grp"

    def test_compression_helps_and_preserves_rows(self, big_warehouse):
        hdfs, metastore = big_warehouse
        plain = connect(engine="hadoop", hdfs=hdfs, metastore=metastore).query(self.SQL)
        conf = Configuration({"mapred.compress.map.output": "true"})
        compressed = connect(
            engine="hadoop", hdfs=hdfs, metastore=metastore, conf=conf
        ).query(self.SQL)
        assert compare_result_rows(plain.rows, compressed.rows, ordered=True)
        assert compressed.execution.total_seconds < plain.execution.total_seconds

    def test_off_by_default(self, big_warehouse):
        hdfs, metastore = big_warehouse
        a = connect(engine="hadoop", hdfs=hdfs, metastore=metastore).query(self.SQL)
        b = connect(engine="hadoop", hdfs=hdfs, metastore=metastore).query(self.SQL)
        assert abs(a.execution.total_seconds - b.execution.total_seconds) < 5.0
