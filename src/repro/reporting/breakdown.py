"""Per-query execution breakdowns (paper Figs 1, 10, 11 methodology).

A query's time decomposes into *compile* + per-job sections, each job
into *startup* (submit -> first task invoked), *Map-Shuffle* (first task
-> shuffle data available) and *others* (merge/reduce/output/sync).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.driver import QueryResult
from repro.engines.base import JobTiming


@dataclass
class JobBreakdown:
    job_id: str
    startup: float
    map_shuffle: float
    others: float

    @property
    def total(self) -> float:
        return self.startup + self.map_shuffle + self.others


@dataclass
class QueryBreakdown:
    """Aggregated breakdown over every statement of one query script."""

    label: str
    compile_seconds: float = 0.0
    jobs: List[JobBreakdown] = field(default_factory=list)

    @property
    def startup(self) -> float:
        return sum(job.startup for job in self.jobs)

    @property
    def map_shuffle(self) -> float:
        return sum(job.map_shuffle for job in self.jobs)

    @property
    def others(self) -> float:
        return sum(job.others for job in self.jobs)

    @property
    def job_total(self) -> float:
        return sum(job.total for job in self.jobs)

    @property
    def total(self) -> float:
        return self.compile_seconds + self.job_total

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)


def breakdown_query(label: str, results: Sequence[QueryResult]) -> QueryBreakdown:
    """Fold the driver results of one script into a QueryBreakdown."""
    out = QueryBreakdown(label=label)
    for result in results:
        out.compile_seconds += result.compile_seconds
        if result.execution is None:
            continue
        for job in result.execution.jobs:
            out.jobs.append(
                JobBreakdown(
                    job_id=job.job_id,
                    startup=job.startup,
                    map_shuffle=job.map_shuffle,
                    others=job.others,
                )
            )
    return out


def format_breakdown_table(breakdowns: Dict[str, QueryBreakdown]) -> str:
    """Render label -> breakdown as the paper's stacked-section table."""
    header = (
        f"{'query':<24} {'jobs':>4} {'compile':>8} {'startup':>8} "
        f"{'map-shuffle':>11} {'others':>8} {'total':>8}"
    )
    lines = [header, "-" * len(header)]
    for label, b in breakdowns.items():
        lines.append(
            f"{label:<24} {b.num_jobs:>4} {b.compile_seconds:>8.1f} "
            f"{b.startup:>8.1f} {b.map_shuffle:>11.1f} {b.others:>8.1f} "
            f"{b.total:>8.1f}"
        )
    return "\n".join(lines)
