"""ExecMapper / ExecReducer: engine-independent task bodies.

The paper's design keeps Hive's ExecMapper/ExecReducer intact and swaps
only the surrounding engine (job control + shuffle).  Likewise here: both
engines instantiate these drivers, feed them rows/groups, and own the
collector the pipeline emits into.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.kv import KeyValue
from repro.common.rows import ColumnBatch
from repro.exec.operators import (
    Collector,
    MapOperator,
    OperatorContext,
    ReduceSinkDesc,
    SkewRoutingCollector,
    build_pipeline,
)
from repro.exec.reduce import ReduceLogic, build_reduce_logic
from repro.exec.vectorized import VectorOperator, build_vector_pipeline

Row = Tuple[object, ...]


@dataclass
class MapTaskResult:
    """Functional products of one map task."""

    output_rows: List[Row]  # non-empty only for map-only jobs
    rows_read: int
    kv_pairs: int
    kv_bytes: int


class ExecMapper:
    """Drives one map task's operator pipeline over input row batches."""

    def __init__(
        self,
        descriptors: List[object],
        collector: Optional[Collector],
        num_partitions: int,
        small_tables: Optional[Dict[str, List[Row]]] = None,
        vectorized: bool = False,
    ):
        self.context = OperatorContext(
            collector=collector,
            num_partitions=num_partitions,
            small_tables=small_tables,
        )
        # Skew routing sits between the sink and the engine collector;
        # both sink implementations read ``context.collector`` at call
        # time, so swapping it here covers every engine, the local
        # oracle and pooled workers with one mechanism.
        if descriptors and collector is not None:
            last = descriptors[-1]
            if isinstance(last, ReduceSinkDesc) and last.skew is not None:
                self.context.collector = SkewRoutingCollector(
                    last.skew, collector, self.context
                )
        # Vectorized mode is all-or-nothing per task: when any descriptor
        # falls outside the column-kernel subset the whole task runs the
        # row pipeline (the ground truth both modes are checked against).
        self.vector_pipeline: Optional[VectorOperator] = (
            build_vector_pipeline(descriptors, self.context)
            if vectorized else None
        )
        self.pipeline: Optional[MapOperator] = (
            None if self.vector_pipeline is not None
            else build_pipeline(descriptors, self.context)
        )
        self._closed = False

    def process_batch(self, rows) -> int:
        """Push a batch through the pipeline; returns rows consumed.

        Accepts either a list of row tuples or a
        :class:`~repro.common.rows.ColumnBatch` and converts to whichever
        representation the active pipeline needs.  Rows travel as one
        list/batch per operator hop instead of one Python call per row —
        same semantics, an order of magnitude fewer interpreter frames.
        """
        if self.vector_pipeline is not None:
            if isinstance(rows, ColumnBatch):
                batch = rows
            else:
                batch = ColumnBatch.from_rows(
                    rows if isinstance(rows, list) else list(rows)
                )
            if batch.live_count:
                self.vector_pipeline.process_batch(batch)
            count = len(batch)
        else:
            if isinstance(rows, ColumnBatch):
                rows = rows.to_rows()
            elif not isinstance(rows, list):
                rows = list(rows)
            self.pipeline.process_rows(rows)
            count = len(rows)
        self.context.rows_read += count
        return count

    def close(self) -> MapTaskResult:
        if not self._closed:
            if self.vector_pipeline is not None:
                self.vector_pipeline.close()
            else:
                self.pipeline.close()
            self._closed = True
        context = self.context
        return MapTaskResult(
            output_rows=context.output_rows,
            rows_read=context.rows_read,
            kv_pairs=context.kv_pairs_out,
            kv_bytes=context.kv_bytes_out,
        )


class ExecReducer:
    """Drives one reduce task: grouped pairs -> reduce logic -> pipeline."""

    def __init__(
        self,
        logic_desc: object,
        downstream_descriptors: List[object],
        collector: Optional[Collector] = None,
        num_partitions: int = 1,
        small_tables: Optional[Dict[str, List[Row]]] = None,
    ):
        self.context = OperatorContext(
            collector=collector,
            num_partitions=num_partitions,
            small_tables=small_tables,
        )
        downstream = build_pipeline(downstream_descriptors, self.context)
        self.logic: ReduceLogic = build_reduce_logic(logic_desc, downstream)
        self._closed = False

    def reduce_group(self, key: Row, values: Sequence[Tuple]) -> None:
        self.logic.reduce(key, values)

    def close(self) -> MapTaskResult:
        if not self._closed:
            self.logic.close()
            self._closed = True
        context = self.context
        return MapTaskResult(
            output_rows=context.output_rows,
            rows_read=context.rows_read,
            kv_pairs=context.kv_pairs_out,
            kv_bytes=context.kv_bytes_out,
        )
