"""The LLAP persistent-daemon engine: solo equivalence, once-per-session
daemon startup, the node-local columnar cache (hits, eviction
determinism, crash invalidation), and the driver result cache
(hits, metastore/snapshot invalidation, concurrent-writer safety)."""

import pytest

from repro import connect
from repro.common.config import (
    EXEC_VECTORIZED,
    FAULT_SPEC,
    LLAP_CACHE_MB,
    SCHED_POLICY,
)
from repro.common.rows import Schema
from repro.engines.base import compare_result_rows
from repro.engines.llap import LlapEngine, StripeCache
from repro.storage.hdfs import HDFS
from repro.storage.metastore import Metastore

FACT_SCHEMA = Schema.parse("k int, grp string, val double")


def build_orc_warehouse(scale: float = 2e4):
    """A deterministic ORC table big enough to span many stripes, yet
    with scaled stripes small enough to fit the default per-node cache."""
    hdfs = HDFS(num_workers=7)
    metastore = Metastore(hdfs)
    table = metastore.create_table("facts", FACT_SCHEMA, format_name="orc")
    rows = [
        (i, f"g{i % 13}", round((i * 7919) % 1000 / 10.0, 1))
        for i in range(6000)
    ]
    hdfs.write(f"{table.location}/part-0", FACT_SCHEMA, rows, scale=scale,
               format_name="orc")
    return hdfs, metastore


QUERIES = (
    "SELECT grp, count(*) AS n, sum(val) AS s FROM facts GROUP BY grp ORDER BY grp",
    "SELECT grp, max(val) FROM facts WHERE k > 1000 GROUP BY grp ORDER BY grp",
    "SELECT k, val FROM facts WHERE val > 99 ORDER BY k LIMIT 10",
)


def total_cache(session, field):
    return sum(stats[field] for stats in session.engine.cache_stats().values())


# ---------------------------------------------------------------------------
# correctness: solo equivalence against the local oracle
# ---------------------------------------------------------------------------


class TestSoloEquivalence:
    @pytest.mark.parametrize("vectorized", [False, True],
                             ids=["row", "vectorized"])
    def test_orc_queries_match_local(self, vectorized):
        hdfs, metastore = build_orc_warehouse()
        conf = {EXEC_VECTORIZED: vectorized}
        llap = connect(engine="llap", hdfs=hdfs, metastore=metastore, conf=conf)
        local = connect(engine="local", hdfs=hdfs, metastore=metastore,
                        conf=conf)
        for sql in QUERIES:
            assert compare_result_rows(
                local.query(sql).rows, llap.query(sql).rows, ordered=True
            ), f"llap diverged from local on {sql!r}"

    def test_text_warehouse_matches_local(self, warehouse):
        hdfs, metastore = warehouse
        llap = connect(engine="llap", hdfs=hdfs, metastore=metastore)
        local = connect(engine="local", hdfs=hdfs, metastore=metastore)
        sql = ("SELECT dept, count(*), avg(salary) FROM emp "
               "WHERE dept IS NOT NULL GROUP BY dept ORDER BY dept")
        assert compare_result_rows(
            local.query(sql).rows, llap.query(sql).rows, ordered=True
        )


# ---------------------------------------------------------------------------
# daemons: spawn paid once per session, warm fragments dispatch fast
# ---------------------------------------------------------------------------


class TestDaemonLifecycle:
    def test_daemon_spawn_charged_once(self):
        hdfs, metastore = build_orc_warehouse()
        session = connect(engine="llap", hdfs=hdfs, metastore=metastore,
                          engine_config={"result_cache": False})
        first = session.query(QUERIES[0]).execution
        second = session.query(QUERIES[0]).execution
        spawn = session.engine.costs.daemon_spawn
        # the fleet bring-up is inside the first query's makespan only
        assert first.total_seconds >= second.total_seconds + spawn * 0.5

    def test_warm_startup_beats_hadoop_per_job(self):
        hdfs, metastore = build_orc_warehouse()
        llap = connect(engine="llap", hdfs=hdfs, metastore=metastore,
                       engine_config={"result_cache": False})
        hadoop = connect(engine="hadoop", hdfs=hdfs, metastore=metastore)
        llap.query(QUERIES[0])  # pay the one-time spawn
        warm = llap.query(QUERIES[0]).execution
        cold = hadoop.query(QUERIES[0]).execution
        for job in warm.jobs:
            assert job.startup < min(j.startup for j in cold.jobs), (
                "a warm llap fragment dispatch must undercut hadoop's "
                "per-job JVM startup"
            )

    def test_capabilities_surface(self):
        caps = LlapEngine.capabilities
        assert caps.persistent and caps.result_cache and caps.shared_runtime
        assert caps.vectorized and not caps.speculative


# ---------------------------------------------------------------------------
# columnar cache: hits, determinism, eviction, crash invalidation
# ---------------------------------------------------------------------------


class TestColumnarCache:
    def test_repeat_scan_hits_cache(self):
        hdfs, metastore = build_orc_warehouse()
        session = connect(engine="llap", hdfs=hdfs, metastore=metastore,
                          engine_config={"result_cache": False})
        session.query(QUERIES[0])
        misses_after_first = total_cache(session, "misses")
        assert misses_after_first > 0, "first scan must populate the cache"
        hits_after_first = total_cache(session, "hits")
        session.query(QUERIES[0])
        assert total_cache(session, "hits") > hits_after_first
        # warm run reads the same stripes from daemon memory, not disk
        assert total_cache(session, "misses") == misses_after_first

    def test_warm_cache_saves_simulated_time(self):
        hdfs, metastore = build_orc_warehouse()
        session = connect(engine="llap", hdfs=hdfs, metastore=metastore,
                          engine_config={"result_cache": False})
        cold = session.query(QUERIES[0]).simulated_seconds
        warm = session.query(QUERIES[0]).simulated_seconds
        assert warm < cold

    def test_hit_miss_sequence_is_deterministic(self):
        def run_workload():
            hdfs, metastore = build_orc_warehouse()
            session = connect(engine="llap", hdfs=hdfs, metastore=metastore,
                              engine_config={"result_cache": False,
                                             "cache_mb": 512})
            for sql in QUERIES * 2:
                session.query(sql)
            return session.engine.cache_stats()

        assert run_workload() == run_workload()

    def test_small_cache_evicts_deterministically(self):
        # derive a capacity that holds roughly half the working set
        hdfs, metastore = build_orc_warehouse()
        probe = connect(engine="llap", hdfs=hdfs, metastore=metastore,
                        engine_config={"result_cache": False})
        probe.query(QUERIES[0])
        resident = sum(
            stats["bytes"] for stats in probe.engine.cache_stats().values()
        )
        per_node = max(
            stats["bytes"] for stats in probe.engine.cache_stats().values()
        )
        assert resident > 0
        cache_mb = per_node * 0.6 / (1024 * 1024)

        def run_small():
            small_hdfs, small_ms = build_orc_warehouse()
            session = connect(engine="llap", hdfs=small_hdfs,
                              metastore=small_ms,
                              engine_config={"result_cache": False,
                                             "cache_mb": cache_mb})
            for sql in QUERIES * 2:
                session.query(sql)
            return session.engine.cache_stats()

        first, second = run_small(), run_small()
        assert first == second, "same seed + workload must replay the same " \
                                "hit/miss/eviction sequence"
        assert sum(s["evictions"] for s in first.values()) > 0

    def test_zero_capacity_disables_admission(self):
        cache = StripeCache("w0", 0.0)
        assert cache.lookup(("p", 0, None), object(), 10.0) is None
        cache.insert(("p", 0, None), object(), 10.0, [[1]])
        assert len(cache) == 0 and cache.misses == 1

    def test_rewritten_file_is_not_served_stale(self):
        cache = StripeCache("w0", 1e9)
        old_file, new_file = object(), object()
        cache.insert(("p", 0, None), old_file, 10.0, [[1, 2]])
        assert cache.lookup(("p", 0, None), old_file, 10.0) == [[1, 2]]
        # the path now points at a different stored file: identity miss
        assert cache.lookup(("p", 0, None), new_file, 10.0) is None
        assert len(cache) == 0

    def test_daemon_crash_invalidates_node_cache(self):
        hdfs, metastore = build_orc_warehouse()
        session = connect(
            engine="llap", hdfs=hdfs, metastore=metastore,
            conf={FAULT_SPEC: "crash:w1@4-60"},
            engine_config={"result_cache": False},
        )
        # pre-seed w1 so the crash demonstrably drops resident data
        session.engine.node_cache(1).insert(("seed", 0, None), object(),
                                            1.0, [[1]])
        local_hdfs, local_ms = build_orc_warehouse()
        local = connect(engine="local", hdfs=local_hdfs, metastore=local_ms)
        result = session.query(QUERIES[0])
        assert compare_result_rows(local.query(QUERIES[0]).rows, result.rows,
                                   ordered=True)
        assert session.engine.node_cache(1).invalidations >= 1
        # the node recovered: a later query repopulates and still matches
        again = session.query(QUERIES[1])
        assert compare_result_rows(local.query(QUERIES[1]).rows, again.rows,
                                   ordered=True)


# ---------------------------------------------------------------------------
# result cache: hits, invalidation, concurrent writers
# ---------------------------------------------------------------------------


class TestResultCache:
    def test_repeated_query_is_free_and_marked(self):
        hdfs, metastore = build_orc_warehouse()
        session = connect(engine="llap", hdfs=hdfs, metastore=metastore)
        first = session.query(QUERIES[0])
        assert not first.cache_hit and first.engine == "llap"
        second = session.query(QUERIES[0])
        assert second.cache_hit
        assert second.engine == "llap"
        assert second.rows == first.rows
        assert second.simulated_seconds == 0.0
        assert second.execution is None
        assert session.caches()["result"]["hits"] == 1

    def test_metastore_version_bump_invalidates(self):
        hdfs, metastore = build_orc_warehouse()
        session = connect(engine="llap", hdfs=hdfs, metastore=metastore)
        first = session.query(QUERIES[0])
        session.execute("CREATE TABLE unrelated (x int)")
        after_ddl = session.query(QUERIES[0])
        assert not after_ddl.cache_hit, "any catalog change invalidates"
        assert after_ddl.rows == first.rows
        assert session.caches()["result"]["invalidations"] >= 1
        assert session.query(QUERIES[0]).cache_hit  # re-admitted

    def test_insert_changes_rows_not_served_stale(self):
        hdfs, metastore = build_orc_warehouse()
        session = connect(engine="llap", hdfs=hdfs, metastore=metastore)
        sql = "SELECT count(*) FROM facts"
        before = session.query(sql)
        assert session.query(sql).cache_hit
        session.execute(
            "INSERT INTO TABLE facts SELECT k, grp, val FROM facts WHERE k < 50"
        )
        after = session.query(sql)
        assert not after.cache_hit, "new input files must invalidate"
        assert after.rows != before.rows

    def test_disabled_by_engine_config(self):
        hdfs, metastore = build_orc_warehouse()
        session = connect(engine="llap", hdfs=hdfs, metastore=metastore,
                          engine_config={"result_cache": False})
        session.query(QUERIES[0])
        assert not session.query(QUERIES[0]).cache_hit
        assert session.caches()["result"] is None

    def test_capability_gated_off_for_hadoop(self, warehouse):
        hdfs, metastore = warehouse
        session = connect(engine="hadoop", hdfs=hdfs, metastore=metastore)
        sql = "SELECT count(*) FROM emp"
        session.query(sql)
        assert not session.query(sql).cache_hit
        assert session.caches()["result"] is None
        assert session.caches()["columnar"] == {}

    def test_lru_capacity_evicts(self):
        hdfs, metastore = build_orc_warehouse()
        session = connect(engine="llap", hdfs=hdfs, metastore=metastore,
                          engine_config={"result_cache_entries": 2})
        for sql in QUERIES:  # 3 distinct entries through a 2-entry cache
            session.query(sql)
        stats = session.caches()["result"]
        assert stats["capacity"] == 2
        assert stats["evictions"] >= 1
        assert not session.query(QUERIES[0]).cache_hit  # evicted LRU

    def test_concurrent_writer_invalidates_mid_workload(self):
        hdfs, metastore = build_orc_warehouse()
        session = connect(engine="llap", hdfs=hdfs, metastore=metastore,
                          conf={SCHED_POLICY: "fair"})
        sql = "SELECT count(*) FROM facts"
        warm = session.submit(sql)
        before_rows = warm.result().rows
        assert session.submit(sql).result().cache_hit  # warm and valid
        # a writer lands between two reads of the same query text
        writer = session.submit(
            "INSERT INTO TABLE facts SELECT k, grp, val FROM facts WHERE k < 50"
        )
        reader = session.submit(sql)
        session.scheduler.drain()
        writer.result()
        after = reader.result()
        if after.cache_hit:
            # a replay is only legal if it reproduces a state whose
            # inputs were verified unchanged — the pre-insert answer
            assert after.rows == before_rows
        final = session.submit(sql).result()
        assert final.rows[0][0] == before_rows[0][0] + 50
        # and the post-insert rows are what repeats serve from now on
        assert session.submit(sql).result().rows == final.rows

    def test_solo_and_scheduler_paths_share_one_cache(self):
        hdfs, metastore = build_orc_warehouse()
        session = connect(engine="llap", hdfs=hdfs, metastore=metastore)
        solo = session.query(QUERIES[0])
        submitted = session.submit(QUERIES[0]).result()
        assert submitted.cache_hit
        assert submitted.rows == solo.rows
