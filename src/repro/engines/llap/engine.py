"""The LLAP-style persistent-daemon engine.

Production Hive closed the startup gap the paper attributes to Hadoop
(per-job JVM spawns, heartbeat scheduling) with LLAP: long-lived daemons
on every node that execute query *fragments* inside already-warm
executor threads and keep decoded columnar data resident in a node-local
cache.  This engine models that design on the shared
:class:`~repro.engines.base.EngineRuntime` seam:

* **Daemons, not jobs** — one daemon per worker node, brought up once
  per session (the ``daemon_spawn`` charge is paid exactly once in
  simulated time, not per job).  Daemons hold long-lived leases on their
  node's slots through the ordinary :class:`LeaseManager`, so their
  footprint is visible to the fair-share/capacity ledger exactly like
  any query's tasks; fragments then contend for the daemons' *executor*
  slots per query, which keeps multi-query arbitration working.
* **Fragment execution** — a map or reduce fragment pays only a small
  dispatch latency (``fragment_dispatch``) instead of Hadoop's
  schedule-delay + JVM spawn; map output stays in daemon memory and is
  streamed to reducers over the network with no intermediate disk.
* **Columnar cache** — ORC splits are scanned through the node-local
  :class:`~repro.engines.llap.cache.StripeCache`: a hit skips both the
  simulated disk read and the ORC decode charge for that stripe.  A
  daemon crash invalidates its node's cache (the data died with the
  process) and the daemon is relaunched on demand when the node
  recovers.
* **Fault tolerance** — task-granular, like Hadoop: attempts are doomed
  by the shared :class:`FaultInjector` contract, crash-interrupted
  fragments are retried on surviving nodes, and completed map output
  lost with a daemon is recomputed.

The functional row-processing machinery is the shared code in
:mod:`repro.engines.base`, so results are byte-identical to the other
engines by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.config import (
    Configuration,
    EXEC_VECTORIZED,
    LLAP_CACHE_MB,
    LLAP_DAEMON_SLOTS,
    TASK_MAX_ATTEMPTS,
)
from repro.common.kv import KeyValue
from repro.common.units import MB
from repro.engines.base import (
    Engine,
    EngineCapabilities,
    EngineRuntime,
    JobTiming,
    MapOutputCollector,
    PlanResult,
    TaskTiming,
    TaggedSplit,
    assign_splits_locality,
    close_job_span,
    close_task_span,
    collect_plan_result,
    decide_num_reducers,
    expand_job_splits,
    hdfs_write_pipeline,
    job_input_scale,
    load_broadcast_tables,
    open_job_span,
    open_task_span,
    pick_read_source,
    record_job_metrics,
    run_reducer_functionally,
    scan_split,
    scan_split_batch,
    write_task_output,
)
from repro.engines.llap.cache import StripeCache
from repro.obs import Tracer, get_metrics
from repro.parallel import pool_from_conf, resolve_compute, spec_for_split
from repro.plan.physical import MRJob, PhysicalPlan
from repro.simulate import (
    Cluster,
    ClusterSpec,
    Interrupt,
    LeaseManager,
    LeaseOwner,
    Simulator,
)
from repro.storage.formats.orc import OrcStoredFile
from repro.storage.hdfs import HDFS

DEFAULT_MAX_TASK_ATTEMPTS = 4
DEFAULT_CACHE_MB = 512.0
RETRY_BACKOFF_SECONDS = 0.5  # wait for a node before re-picking placement


@dataclass
class LlapCosts:
    """Calibrated latencies/rates for the LLAP engine.

    CPU rates match the Hadoop engine (same operators on the same
    hardware); only the control-plane costs differ — that difference
    *is* the daemon model.
    """

    daemon_spawn: float = 2.8  # whole-fleet bring-up, once per session
    daemon_restart: float = 2.0  # relaunch one daemon after a node crash
    job_submit: float = 0.3  # AM admits the fragment DAG
    fragment_dispatch: float = 0.08  # enqueue into a warm executor
    job_cleanup: float = 0.3
    cpu_map_ms_per_mb: float = 35.0
    cpu_reduce_ms_per_mb: float = 14.0
    cpu_sort_ms_per_mb: float = 7.0
    cpu_orc_decode_ms_per_mb: float = 14.0  # skipped for cached stripes


@dataclass
class _ScanOutcome:
    """One fragment's byte bookkeeping through the columnar cache.

    The payload itself comes from :func:`repro.parallel.run_map_compute`
    (inline or on a pool worker) via the stored file's ordinary
    ``scan``/``scan_batch`` — byte-identical rows by construction — so
    the cache pass only decides which bytes were hits."""

    total_bytes: float  # logical bytes the fragment processed
    hit_bytes: float  # served from the node cache (no read, no decode)
    miss_bytes: float  # read + decoded (and inserted)
    orc: bool = False


class _Daemon:
    """One node's resident executor daemon (lifecycle state)."""

    def __init__(self, node_index: int):
        self.node_index = node_index
        self.up = False
        self.launching = False
        self.ready = None  # Event: triggered when up (or bring-up aborted)
        self.stop = None  # Event: parked on while serving
        self.proc = None


class _ShuffleState:
    """Coordination state for one job's map outputs (daemon memory)."""

    def __init__(self, sim: Simulator, num_maps: int, num_reducers: int):
        self.sim = sim
        self.maps_done = 0
        self.num_maps = num_maps
        self.num_reducers = num_reducers
        # map_index -> (node, collector, scale); entries removed when the
        # hosting daemon dies (output lived in its memory)
        self.map_outputs: Dict[int, Tuple[int, MapOutputCollector, float]] = {}
        self.map_completion_events: List = []
        self.all_maps_event = sim.event()
        self.last_copy_done = 0.0
        self.vectorized = False
        self.pool = None  # repro.parallel worker pool (None = inline)
        self.map_task_records: Dict[int, TaskTiming] = {}

    def map_finished(self, map_index: int, node: int,
                     collector: MapOutputCollector, scale: float) -> None:
        self.map_outputs[map_index] = (node, collector, scale)
        self.maps_done += 1
        event = self.map_completion_events[map_index]
        if not event.triggered:
            event.trigger(None)
        if self.maps_done == self.num_maps and not self.all_maps_event.triggered:
            self.all_maps_event.trigger(None)

    def invalidate_map(self, map_index: int) -> bool:
        """Forget a completed map whose output died with its daemon."""
        if map_index not in self.map_outputs:
            return False
        del self.map_outputs[map_index]
        self.maps_done -= 1
        self.map_completion_events[map_index] = self.sim.event()
        return True


class _DaemonFleet:
    """Per-runtime daemon lifecycle: bring-up, leases, crash recovery.

    The *simulated-time* spawn charge is engine-level (daemons persist
    across a session's runtimes); the lease/process state is per runtime
    because each runtime is its own simulated world.
    """

    def __init__(self, engine: "LlapEngine", runtime: EngineRuntime,
                 daemon_slots: int):
        self.engine = engine
        self.runtime = runtime
        self.sim = runtime.sim
        self.daemon_slots = daemon_slots
        self.daemons = [
            _Daemon(index) for index in range(len(runtime.cluster.workers))
        ]
        self.exec_slots = runtime.aux_slots("llap.exec", daemon_slots, "llapx")
        self.owner = LeaseOwner("llap-daemons", pool="llap")
        self.ready = self.sim.event()
        self.starting = False
        # node-local effect: the decoded cache dies at the physical crash
        # instant, not when the failure detector declares the node dead
        runtime.injector.subscribe_crash(self._on_crash, immediate=True)
        runtime.injector.subscribe_membership(self._on_membership)

    def close(self) -> None:
        self.runtime.injector.unsubscribe_crash(self._on_crash)
        self.runtime.injector.unsubscribe_membership(self._on_membership)

    # -- crash handling -----------------------------------------------------
    def _on_crash(self, worker_index: int) -> None:
        # the decoded data died with the daemon process: drop the node's
        # cache before anything re-reads (the daemon itself is interrupted
        # through its injector registration and releases its leases there)
        dropped = self.engine.invalidate_node_cache(worker_index)
        if dropped:
            get_metrics().counter("llap.cache.invalidations").add(dropped)

    # -- membership ---------------------------------------------------------
    def _on_membership(self, kind: str, worker_index: int) -> None:
        if kind == "join":
            # runtime._grow_aux_slots already appended the exec pool for a
            # brand-new node (cluster join listeners fire first)
            while len(self.daemons) <= worker_index:
                self.daemons.append(_Daemon(len(self.daemons)))
            if self.starting or self.ready.triggered:
                self._launch(worker_index, restart=self.ready.triggered)
        elif kind == "drain":
            self._drain_daemon(worker_index)

    def _drain_daemon(self, worker_index: int) -> None:
        """Retire a draining node's daemon once its executor pool idles:
        running fragments finish, new placements already avoid the node."""
        if worker_index >= len(self.daemons):
            return
        node = self.runtime.cluster.workers[worker_index]
        if not node.draining:
            return  # re-commissioned mid-drain
        daemon = self.daemons[worker_index]
        if not daemon.up:
            return
        if self.exec_slots[worker_index].in_use > 0:
            self.sim.call_at(
                self.sim.now + 0.5, self._drain_daemon, worker_index,
                daemon=True,
            )
            return
        if daemon.stop is not None and not daemon.stop.triggered:
            daemon.stop.trigger(None)

    # -- bring-up -----------------------------------------------------------
    def ensure_started(self):
        """Generator: wait for the fleet.  The bring-up itself runs in a
        fleet-owned process (first caller spawns it), so an interrupted
        caller — a query hitting its deadline mid-bring-up — can never
        wedge the fleet for every other query."""
        if not self.starting and not self.ready.triggered:
            self.starting = True
            self.sim.spawn(self._startup_process(), "llap-fleet-start")
        if not self.ready.triggered:
            yield self.ready

    def _startup_process(self):
        charge = not self.engine._daemons_started
        self.engine._daemons_started = True
        if charge:
            yield self.sim.timeout(self.engine.costs.daemon_spawn)
        waits = []
        for index in self.runtime.injector.schedulable_worker_indices():
            waits.append(self._launch(index, restart=False))
        for event in waits:
            yield event
        if not self.ready.triggered:
            self.ready.trigger(None)

    def _launch(self, index: int, restart: bool):
        daemon = self.daemons[index]
        if daemon.up or daemon.launching:
            return daemon.ready
        daemon.launching = True
        daemon.ready = self.sim.event()
        daemon.stop = self.sim.event()
        daemon.proc = self.sim.spawn(
            self._daemon_process(daemon, restart), f"llap-daemon-w{index}"
        )
        return daemon.ready

    def ensure_daemon(self, index: int):
        """Generator: wait for node *index*'s daemon, relaunching it if
        the node recovered from a crash.  Returns True when the daemon is
        serving, False when the node is (still) dead."""
        daemon = self.daemons[index]
        while not daemon.up:
            if not self.runtime.injector.node_schedulable(index):
                return False  # dead — or draining: don't fight the drain
            yield self._launch(index, restart=self.ready.triggered)
        return True

    def _daemon_process(self, daemon: _Daemon, restart: bool):
        """The resident daemon: holds its node-slot leases and heap for
        the life of the runtime (or until its node crashes)."""
        runtime = self.runtime
        node = runtime.cluster.workers[daemon.node_index]
        leases = runtime.leases
        injector = runtime.injector
        heap = 0.0
        acquired = []
        held = 0
        try:
            injector.register(daemon.node_index, daemon.proc)
            if restart:
                yield self.sim.timeout(self.engine.costs.daemon_restart)
                get_metrics().counter("llap.daemons.restarted").add(1)
            acquired = [
                leases.acquire(node.slots, self.owner)
                for _ in range(self.daemon_slots)
            ]
            for event in acquired:
                yield event
                held += 1
            heap = runtime.spec.heap_per_task * self.daemon_slots
            node.memory.allocate(heap)
            daemon.up = True
            daemon.launching = False
            if not daemon.ready.triggered:
                daemon.ready.trigger(None)
            yield daemon.stop  # parked until the node dies
        except Interrupt:
            pass
        finally:
            daemon.up = False
            daemon.launching = False
            if heap:
                node.memory.free(heap)
            for position, event in enumerate(acquired):
                if position < held:
                    leases.release(node.slots, self.owner)
                else:
                    leases.cancel(node.slots, event, self.owner)
            injector.unregister(daemon.node_index, daemon.proc)
            if not daemon.ready.triggered:
                daemon.ready.trigger(None)  # unblock waiters; they re-check


class LlapEngine(Engine):
    name = "llap"
    capabilities = EngineCapabilities(
        vectorized=True, persistent=True, result_cache=True,
        shared_runtime=True,
    )

    def __init__(
        self,
        hdfs: HDFS,
        spec: Optional[ClusterSpec] = None,
        costs: Optional[LlapCosts] = None,
    ):
        self.hdfs = hdfs
        self.spec = spec or ClusterSpec()
        self.costs = costs or LlapCosts()
        # daemon memory persists across runtimes (that is the point):
        # per-node stripe caches and the once-per-session spawn charge
        self._caches: Dict[int, StripeCache] = {}
        self._cache_mb = DEFAULT_CACHE_MB
        self._daemons_started = False
        self._fleets: Dict[int, _DaemonFleet] = {}

    # -- cache surface ------------------------------------------------------
    def node_cache(self, index: int) -> StripeCache:
        cache = self._caches.get(index)
        if cache is None:
            cache = StripeCache(f"w{index}", self._cache_mb * MB)
            self._caches[index] = cache
        return cache

    def invalidate_node_cache(self, index: int) -> int:
        cache = self._caches.get(index)
        if cache is None:
            return 0
        return cache.invalidate()

    def cache_stats(self) -> Dict[str, Dict[str, object]]:
        """Per-daemon columnar-cache counters (``Session.caches()``)."""
        return {
            cache.node_name: cache.stats()
            for _index, cache in sorted(self._caches.items())
        }

    # -- public API ---------------------------------------------------------
    def run_plan(
        self,
        plan: PhysicalPlan,
        conf: Optional[Configuration] = None,
        with_metrics: bool = False,
        tracer: Optional[Tracer] = None,
    ) -> PlanResult:
        conf = conf or Configuration()
        runtime = EngineRuntime(
            self.spec, conf, with_metrics=with_metrics, tracer=tracer
        )
        timings: List[JobTiming] = []

        def driver():
            collected = yield from self.plan_process(runtime, plan, conf)
            timings.extend(collected)

        runtime.sim.spawn(driver(), "hive-driver")
        try:
            runtime.sim.run()
        finally:
            self._drop_fleet(runtime)
            runtime.close()
        return collect_plan_result(self, runtime, plan, timings)

    def plan_process(
        self,
        runtime: EngineRuntime,
        plan: PhysicalPlan,
        conf: Optional[Configuration] = None,
        owner: Optional[LeaseOwner] = None,
    ):
        conf = conf or Configuration()
        self._cache_mb = conf.get_float(LLAP_CACHE_MB, DEFAULT_CACHE_MB)
        fleet = self._fleet(runtime, conf)
        yield from fleet.ensure_started()
        timings: List[JobTiming] = []
        for index, job in enumerate(plan.jobs):
            is_last = index == len(plan.jobs) - 1
            timing = yield from self._run_job(
                runtime, fleet, job, conf, is_last, owner
            )
            timings.append(timing)
        return timings

    # -- fleet bookkeeping --------------------------------------------------
    def _fleet(self, runtime: EngineRuntime, conf: Configuration) -> _DaemonFleet:
        fleet = self._fleets.get(id(runtime))
        if fleet is None:
            daemon_slots = conf.get_int(LLAP_DAEMON_SLOTS, 0)
            if daemon_slots <= 0:
                daemon_slots = runtime.spec.slots_per_node
            daemon_slots = min(daemon_slots, runtime.spec.slots_per_node)
            fleet = _DaemonFleet(self, runtime, daemon_slots)
            self._fleets[id(runtime)] = fleet
        return fleet

    def _drop_fleet(self, runtime: EngineRuntime) -> None:
        fleet = self._fleets.pop(id(runtime), None)
        if fleet is not None:
            fleet.close()

    # -- job execution ------------------------------------------------------
    def _run_job(self, runtime: EngineRuntime, fleet: _DaemonFleet,
                 job: MRJob, conf: Configuration, is_last: bool,
                 owner: Optional[LeaseOwner]):
        sim = runtime.sim
        cluster = runtime.cluster
        costs = self.costs
        hdfs = self.hdfs
        splits = expand_job_splits(job, hdfs)
        small_tables = load_broadcast_tables(job, hdfs)
        scale = job_input_scale(job, hdfs)
        total_bytes = sum(s.logical_bytes for s in splits)
        num_reducers = decide_num_reducers(
            job, len(splits), total_bytes, conf, is_last, self.spec.total_slots
        )
        timing = JobTiming(
            job_id=job.job_id,
            submitted=sim.now,
            num_maps=len(splits),
            num_reducers=num_reducers,
        )
        timing.span = open_job_span(runtime.tracer, self.name, job, sim.now,
                                    owner)
        max_attempts = max(1, conf.get_int(TASK_MAX_ATTEMPTS,
                                           DEFAULT_MAX_TASK_ATTEMPTS))

        yield sim.timeout(costs.job_submit)

        if not splits:
            write_task_output(job, hdfs, 0, [], scale)
            timing.first_task_started = sim.now
            timing.shuffle_done = sim.now
            yield sim.timeout(costs.job_cleanup)
            timing.finished = sim.now
            close_job_span(timing)
            record_job_metrics(self.name, timing, self.spec.total_slots)
            return timing

        state = _ShuffleState(sim, len(splits), num_reducers)
        state.map_completion_events = [sim.event() for _ in splits]
        state.vectorized = conf.get_bool(EXEC_VECTORIZED, True)
        state.pool = pool_from_conf(conf)
        assignment = assign_splits_locality(splits, len(cluster.workers))
        first_start_event = sim.event()

        map_processes = [
            sim.spawn(
                self._map_fragment(
                    runtime, fleet, job, state, timing, index, tagged,
                    assignment[index], small_tables, num_reducers,
                    first_start_event, scale, max_attempts, owner,
                ),
                f"{job.job_id}-m{index}",
            )
            for index, tagged in enumerate(splits)
        ]
        reduce_processes = []
        if not job.is_map_only:
            for partition in range(num_reducers):
                node_index = partition % len(cluster.workers)
                reduce_processes.append(
                    sim.spawn(
                        self._reduce_fragment(
                            runtime, fleet, job, state, timing, partition,
                            node_index, small_tables, scale, max_attempts,
                            owner,
                        ),
                        f"{job.job_id}-r{partition}",
                    )
                )

        # a dead daemon takes the map output in its memory with it: those
        # completed maps re-execute (map-only output is already in HDFS)
        respawned: List = []

        def on_crash(worker_index: int) -> None:
            if job.is_map_only:
                return
            for map_index, entry in sorted(state.map_outputs.items()):
                if entry[0] != worker_index:
                    continue
                state.invalidate_map(map_index)
                get_metrics().counter("llap.maps.lost").add(1)
                respawned.append(
                    sim.spawn(
                        self._map_fragment(
                            runtime, fleet, job, state, timing, map_index,
                            splits[map_index], assignment[map_index],
                            small_tables, num_reducers, first_start_event,
                            scale, max_attempts, owner,
                            task=state.map_task_records[map_index],
                        ),
                        f"{job.job_id}-m{map_index}-rerun",
                    )
                )

        runtime.injector.subscribe_crash(on_crash)
        try:
            pending = map_processes + reduce_processes
            while pending:
                yield sim.all_of(pending)
                pending = respawned[:]
                del respawned[:]
        finally:
            # an interrupt (query deadline) must not leave a stale
            # subscriber respawning fragments for an abandoned job
            runtime.injector.unsubscribe_crash(on_crash)

        if job.is_map_only:
            timing.shuffle_done = sim.now
        else:
            timing.shuffle_done = max(timing.shuffle_done, state.last_copy_done)
        yield sim.timeout(costs.job_cleanup)
        timing.finished = sim.now
        timing.shuffle_logical_bytes = sum(
            collector.total_bytes * map_scale
            for _node, collector, map_scale in state.map_outputs.values()
        )
        yield first_start_event  # already triggered by the first fragment
        timing.first_task_started = first_start_event.value
        close_job_span(timing)
        record_job_metrics(self.name, timing, self.spec.total_slots)
        return timing

    # -- placement ----------------------------------------------------------
    @staticmethod
    def _pick_node(cluster: Cluster, preferred: int, salt: int,
                   spread: int = 0) -> int:
        live = [i for i, node in enumerate(cluster.workers) if node.schedulable]
        if not live:  # everything draining: fall back to merely-alive
            live = [i for i, node in enumerate(cluster.workers) if node.alive]
        if not live:
            return preferred  # whole cluster down: degenerate fallback
        if salt == 0 and preferred in live:
            return preferred
        if preferred in live:
            return live[(preferred + salt) % len(live)]
        # the preferred node is gone: *spread* (the fragment's own index)
        # fans displaced fragments across the survivors instead of
        # stampeding them all onto the same fallback node
        return live[(preferred + salt + spread) % len(live)]

    # -- columnar cache scan -------------------------------------------------
    def _cached_scan(self, tagged: TaggedSplit, node_index: int) -> _ScanOutcome:
        """Pass an ORC split through node *node_index*'s stripe cache.

        The stripe iteration (range overlap, predicate skipping, byte
        arithmetic) mirrors ``OrcStoredFile.scan``/``scan_batch``
        statement for statement, so the hit/miss split covers exactly the
        bytes those scans charge; only the hit portion of the byte charge
        is dropped.  Non-ORC formats never come here — they have no
        stripe structure to cache, so every byte is a miss and the charge
        comes straight from the compute outcome.
        """
        stored = tagged.split.stored
        cache = self.node_cache(node_index)
        split = tagged.split
        hints = tagged.map_input.hints
        columns = hints.columns
        conjuncts = hints.stats_conjuncts or None
        scale = split.scale
        row_start = split.row_start
        row_end = row_start + split.row_count
        hit = 0.0
        miss = 0.0
        for stripe_index, stripe in enumerate(stored.stripes):
            if stripe.row_start >= row_end:
                break
            lo = max(stripe.row_start, row_start)
            hi = min(stripe.row_start + stripe.row_count, row_end)
            if hi <= lo:
                continue
            if not stripe.may_contain(conjuncts):
                continue  # predicate pushdown: never reaches the cache
            overlap = OrcStoredFile._overlap_fraction(stripe, row_start, row_end)
            nbytes = stripe.bytes_for_columns(columns) * overlap * scale
            key = stored.stripe_cache_key(split.path, stripe_index, columns)
            decoded = cache.lookup(key, stored, nbytes)
            if decoded is None:
                decoded = stored.decoded_stripe_columns(stripe_index)
                cache.insert(
                    key, stored,
                    stripe.bytes_for_columns(columns) * scale, decoded,
                )
                miss += nbytes
            else:
                hit += nbytes
        return _ScanOutcome(hit + miss, hit, miss, orc=True)

    def _charge_read(self, cluster: Cluster, node, node_index: int,
                     tagged: TaggedSplit, nbytes: float):
        """Charge reading *nbytes* of a split (cache misses only): local
        disk, or replica disk + network when the fragment is remote."""
        if nbytes <= 0:
            return
        source_index = pick_read_source(cluster, tagged, node_index)
        if source_index is None:
            yield from node.disk_read(nbytes)
        else:
            source = cluster.workers[source_index]
            yield from source.disk_read(nbytes)
            yield from cluster.network_transfer(source, node, nbytes)

    # -- map fragment --------------------------------------------------------
    def _map_fragment(self, runtime: EngineRuntime, fleet: _DaemonFleet,
                      job: MRJob, state: _ShuffleState, timing: JobTiming,
                      index: int, tagged: TaggedSplit, preferred: int,
                      small_tables, num_reducers: int, first_start_event,
                      job_scale: float, max_attempts: int,
                      owner: Optional[LeaseOwner],
                      task: Optional[TaskTiming] = None):
        """Coordinator for one logical map fragment: attempt-level retry
        against daemon availability and injected faults."""
        sim = runtime.sim
        cluster = runtime.cluster
        injector = runtime.injector
        fresh = task is None
        if fresh:
            task = TaskTiming(task_id=f"m{index}", kind="map", node=preferred,
                              scheduled=sim.now)
            timing.tasks.append(task)
            open_task_span(timing, task)
            state.map_task_records[index] = task
        elif task.span is not None:
            task.span.add_event("re-execute", sim.now, reason="lost-map-output")

        commit_cell: Dict[str, bool] = {}
        attempt = 0  # placement tries (incl. waiting out dead nodes)
        executions = 0  # actual runs; bounds doom injection
        while True:
            attempt += 1
            chosen = self._pick_node(cluster, preferred,
                                     0 if attempt == 1 else attempt,
                                     spread=index)
            serving = yield from fleet.ensure_daemon(chosen)
            if not serving:
                # the chosen node died during daemon bring-up: wait out
                # the blip and place the attempt elsewhere
                yield sim.timeout(RETRY_BACKOFF_SECONDS)
                continue
            executions += 1
            if not fresh or executions > 1:
                task.attempts += 1
            doom = None
            if executions < max_attempts:  # the last attempt always runs clean
                doom = injector.attempt_doom(job.job_id, task.task_id,
                                             task.attempts)
            proc = sim.spawn(
                self._map_attempt(
                    runtime, fleet, job, state, task, tagged, chosen,
                    small_tables, num_reducers, first_start_event, job_scale,
                    index, doom, commit_cell, owner,
                ),
                f"{job.job_id}-{task.task_id}-e{task.attempts}",
            )
            injector.register(chosen, proc)
            result = yield proc
            injector.unregister(chosen, proc)
            outcome = result[0] if isinstance(result, tuple) else "killed"
            if outcome == "ok":
                _tag, collector, map_result = result
                task.node = chosen
                task.rows_read = map_result.rows_read
                task.kv_pairs = map_result.kv_pairs
                task.kv_bytes = map_result.kv_bytes * tagged.split.scale
                task.finished = sim.now
                close_task_span(task)
                state.map_finished(index, chosen, collector,
                                   tagged.split.scale)
                return
            timing.failed_attempts += 1
            get_metrics().counter("cluster.tasks.failed").add(1)
            if task.span is not None:
                task.span.add_event("attempt-failed", sim.now,
                                    outcome=outcome, node=chosen,
                                    execution=task.attempts)

    def _map_attempt(self, runtime: EngineRuntime, fleet: _DaemonFleet,
                     job: MRJob, state: _ShuffleState, task: TaskTiming,
                     tagged: TaggedSplit, node_index: int, small_tables,
                     num_reducers: int, first_start_event, job_scale: float,
                     index: int, doom: Optional[float],
                     commit_cell: Dict[str, bool],
                     owner: Optional[LeaseOwner]):
        """One map attempt inside node *node_index*'s daemon."""
        sim = runtime.sim
        cluster = runtime.cluster
        leases: LeaseManager = runtime.leases
        costs = self.costs
        node = cluster.workers[node_index]
        exec_pool = fleet.exec_slots[node_index]
        acquired = leases.acquire(exec_pool, owner)
        held_slot = False
        committed = False
        collector = None
        result = None
        spec = None
        future = None
        if doom is None:
            spec = spec_for_split(
                "llap", tagged, num_partitions=num_reducers,
                small_tables=small_tables, vectorized=state.vectorized,
                map_only=job.is_map_only,
            )
            if state.pool is not None:
                # submit before any simulated wait: sibling fragments
                # scheduled at this instant reach the pool before the DES
                # first blocks on a result
                future = state.pool.submit(spec)
        try:
            yield acquired
            held_slot = True
            yield sim.timeout(costs.fragment_dispatch)
            task.started = sim.now
            if not first_start_event.triggered:
                first_start_event.trigger(sim.now)

            orc = isinstance(tagged.split.stored, OrcStoredFile)
            scan = None
            if orc:
                cache = self.node_cache(node_index)
                before = (cache.hits, cache.misses, cache.evictions)
                scan = self._cached_scan(tagged, node_index)
                hit_delta = cache.hits - before[0]
                miss_delta = cache.misses - before[1]
                evict_delta = cache.evictions - before[2]
                metrics = get_metrics()
                if hit_delta:
                    metrics.counter("llap.cache.hits").add(hit_delta)
                    metrics.counter("llap.cache.hit.bytes").add(scan.hit_bytes)
                if miss_delta:
                    metrics.counter("llap.cache.misses").add(miss_delta)
                    metrics.counter("llap.cache.miss.bytes").add(scan.miss_bytes)
                if evict_delta:
                    metrics.counter("llap.cache.evictions").add(evict_delta)
                if task.span is not None:
                    task.span.add_event(
                        "columnar-cache", sim.now,
                        hits=hit_delta, misses=miss_delta,
                        hit_bytes=scan.hit_bytes, miss_bytes=scan.miss_bytes,
                    )

            if doom is not None:
                # injected failure: burn the work up to the doom point
                if orc:
                    read_bytes, burn_bytes = scan.miss_bytes, scan.total_bytes
                else:
                    if state.vectorized:
                        _payload, nbytes = scan_split_batch(tagged)
                    else:
                        _payload, nbytes = scan_split(tagged)
                    read_bytes = burn_bytes = nbytes
                yield from self._charge_read(cluster, node, node_index,
                                             tagged, read_bytes * doom)
                yield from node.compute(
                    burn_bytes * doom / MB * costs.cpu_map_ms_per_mb / 1000.0
                )
                return ("failed", "injected")

            # the fragment's scan + operator pipeline ran on a pool worker
            # (or runs inline here); the cache pass above already split
            # the byte charge into hits and misses
            outcome = resolve_compute(future, spec)
            collector = outcome.collector
            result = outcome.result
            total_bytes = scan.total_bytes if orc else outcome.bytes_to_read
            miss_bytes = scan.miss_bytes if orc else outcome.bytes_to_read

            # cache misses hit the disk (or a replica over the wire) and
            # pay the decode rate; hits cost neither
            yield from self._charge_read(cluster, node, node_index, tagged,
                                         miss_bytes)
            cpu_ms = total_bytes / MB * costs.cpu_map_ms_per_mb
            if orc:
                cpu_ms += miss_bytes / MB * costs.cpu_orc_decode_ms_per_mb
            yield from node.compute(cpu_ms / 1000.0)
            task.collect_samples.append((sim.now, collector.total_bytes))

            if job.is_map_only:
                # commit point: exactly one attempt writes the part-file
                if commit_cell.get("done"):
                    return ("lost-race", None)
                commit_cell["done"] = True
                data_file = write_task_output(
                    job, self.hdfs, index, result.output_rows, job_scale,
                    writer_node=node_index,
                )
                committed = True
                yield from hdfs_write_pipeline(cluster, node, data_file)

            return ("ok", collector, result)
        except Interrupt as interrupt:
            if committed:
                return ("ok", collector, result)
            return ("killed", interrupt.cause)
        finally:
            if held_slot:
                leases.release(exec_pool, owner)
            elif acquired is not None:
                leases.cancel(exec_pool, acquired, owner)

    # -- reduce fragment -----------------------------------------------------
    def _reduce_fragment(self, runtime: EngineRuntime, fleet: _DaemonFleet,
                         job: MRJob, state: _ShuffleState, timing: JobTiming,
                         partition: int, preferred: int, small_tables,
                         scale: float, max_attempts: int,
                         owner: Optional[LeaseOwner]):
        sim = runtime.sim
        cluster = runtime.cluster
        injector = runtime.injector
        task = TaskTiming(task_id=f"r{partition}", kind="reduce",
                          node=preferred, scheduled=sim.now)
        timing.tasks.append(task)
        open_task_span(timing, task)

        yield state.all_maps_event  # LLAP streams once the map side is done
        commit_cell: Dict[str, bool] = {}
        attempt = 0  # placement tries (incl. waiting out dead nodes)
        executions = 0  # actual runs; bounds doom injection
        while True:
            attempt += 1
            chosen = self._pick_node(cluster, preferred,
                                     0 if attempt == 1 else attempt,
                                     spread=partition)
            serving = yield from fleet.ensure_daemon(chosen)
            if not serving:
                yield sim.timeout(RETRY_BACKOFF_SECONDS)
                continue
            executions += 1
            if executions > 1:
                task.attempts += 1
            doom = None
            if executions < max_attempts:
                doom = injector.attempt_doom(job.job_id, task.task_id,
                                             task.attempts)
            proc = sim.spawn(
                self._reduce_attempt(
                    runtime, fleet, job, state, task, partition, chosen,
                    small_tables, scale, doom, commit_cell, owner,
                ),
                f"{job.job_id}-{task.task_id}-e{task.attempts}",
            )
            injector.register(chosen, proc)
            result = yield proc
            injector.unregister(chosen, proc)
            outcome = result[0] if isinstance(result, tuple) else "killed"
            if outcome == "ok":
                task.node = chosen
                task.finished = sim.now
                close_task_span(task)
                return
            timing.failed_attempts += 1
            get_metrics().counter("cluster.tasks.failed").add(1)
            if task.span is not None:
                task.span.add_event("attempt-failed", sim.now,
                                    outcome=outcome, node=chosen,
                                    execution=task.attempts)

    def _reduce_attempt(self, runtime: EngineRuntime, fleet: _DaemonFleet,
                        job: MRJob, state: _ShuffleState, task: TaskTiming,
                        partition: int, node_index: int, small_tables,
                        scale: float, doom: Optional[float],
                        commit_cell: Dict[str, bool],
                        owner: Optional[LeaseOwner]):
        sim = runtime.sim
        cluster = runtime.cluster
        leases: LeaseManager = runtime.leases
        costs = self.costs
        node = cluster.workers[node_index]
        pool = fleet.exec_slots[node_index]
        acquired = leases.acquire(pool, owner)
        held_slot = False
        committed = False
        try:
            yield acquired
            held_slot = True
            yield sim.timeout(costs.fragment_dispatch)
            task.started = sim.now

            # stream every map's partition straight out of daemon memory:
            # network only (no source disk read, no spill files)
            shuffle_span = (
                task.span.start_child("shuffle", sim.now, category="shuffle",
                                      node=node_index)
                if task.span is not None else None
            )
            copied = 0.0
            pairs_by_map: Dict[int, List[KeyValue]] = {}
            for map_index in range(state.num_maps):
                while True:
                    if map_index not in state.map_outputs:
                        # a crash invalidated this map mid-stream and its
                        # re-run needs an executor slot — possibly in this
                        # very pool.  Parking here while holding ours would
                        # deadlock the daemon, so hand the slot back for
                        # the duration of the wait.
                        leases.release(pool, owner)
                        held_slot = False
                        acquired = None
                        while map_index not in state.map_outputs:
                            yield state.map_completion_events[map_index]
                        acquired = leases.acquire(pool, owner)
                        yield acquired
                        held_slot = True
                    entry = state.map_outputs[map_index]
                    source_index, collector, map_scale = entry
                    chunk = collector.partition_bytes[partition] * map_scale
                    if chunk > 0 and source_index != node_index:
                        source = cluster.workers[source_index]
                        yield from cluster.network_transfer(source, node,
                                                            chunk)
                    if state.map_outputs.get(map_index) is not entry:
                        continue  # source daemon died mid-stream: re-pull
                    pairs_by_map[map_index] = list(
                        collector.partitions[partition]
                    )
                    copied += chunk
                    break
            state.last_copy_done = max(state.last_copy_done, sim.now)
            task.kv_bytes = copied
            if shuffle_span is not None:
                shuffle_span.finish(sim.now, bytes=copied,
                                    maps=state.num_maps)

            if doom is not None:
                return ("failed", "injected")

            if copied > 0:
                yield from node.compute(
                    copied / MB * costs.cpu_sort_ms_per_mb / 1000.0
                )
            pairs: List[KeyValue] = []
            for map_index in range(state.num_maps):
                pairs.extend(pairs_by_map.get(map_index, ()))
            output_rows = run_reducer_functionally(job, pairs, small_tables)
            yield from node.compute(
                copied / MB * costs.cpu_reduce_ms_per_mb / 1000.0
            )

            if commit_cell.get("done"):
                return ("lost-race", None)
            commit_cell["done"] = True
            data_file = write_task_output(
                job, self.hdfs, partition, output_rows, scale,
                writer_node=node_index,
            )
            committed = True
            yield from hdfs_write_pipeline(cluster, node, data_file)
            return ("ok",)
        except Interrupt as interrupt:
            if committed:
                return ("ok",)
            return ("killed", interrupt.cause)
        finally:
            if held_slot:
                leases.release(pool, owner)
            elif acquired is not None:
                leases.cancel(pool, acquired, owner)
