"""Byte-size and duration helpers.

The simulator thinks in plain floats (bytes, seconds); these helpers keep
call sites readable (``64 * MB``) and make report output human friendly.
"""

from __future__ import annotations

import re

from repro.common.errors import ConfigError

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB
TB: int = 1024 * GB

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([KMGT]?B?)\s*$", re.IGNORECASE)

_SUFFIX_FACTOR = {
    "": 1,
    "B": 1,
    "KB": KB,
    "K": KB,
    "MB": MB,
    "M": MB,
    "GB": GB,
    "G": GB,
    "TB": TB,
    "T": TB,
}


def parse_size(text: str) -> int:
    """Parse a human size string like ``"64MB"`` or ``"1.5 GB"`` into bytes.

    >>> parse_size("64MB")
    67108864
    >>> parse_size("2k")
    2048
    """
    match = _SIZE_RE.match(text)
    if match is None:
        raise ConfigError(f"unparseable size: {text!r}")
    value = float(match.group(1))
    suffix = match.group(2).upper()
    if suffix not in _SUFFIX_FACTOR:
        raise ConfigError(f"unknown size suffix in {text!r}")
    return int(value * _SUFFIX_FACTOR[suffix])


def format_size(num_bytes: float) -> str:
    """Render a byte count with the largest suffix that keeps 3 significant
    digits, mirroring ``ls -h`` style output.

    >>> format_size(935 * MB)
    '935.0 MB'
    """
    magnitude = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(magnitude) < 1024.0 or unit == "TB":
            return f"{magnitude:.1f} {unit}"
        magnitude /= 1024.0
    raise AssertionError("unreachable")


def format_duration(seconds: float) -> str:
    """Render a duration as ``mm:ss.s`` (or ``h:mm:ss`` above an hour).

    >>> format_duration(61.5)
    '01:01.5'
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds >= 3600:
        hours = int(seconds // 3600)
        rem = seconds - hours * 3600
        return f"{hours}:{int(rem // 60):02d}:{int(rem % 60):02d}"
    minutes = int(seconds // 60)
    return f"{minutes:02d}:{seconds - minutes * 60:04.1f}"
