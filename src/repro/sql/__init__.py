"""HiveQL-subset front end: lexer, AST, parser, builtin functions.

The subset covers what the paper's workloads need once TPC-H is rewritten
HiveQL-style (multi-statement scripts, no correlated subqueries — the same
port the paper used, cf. its reference [19]):

* ``SELECT`` with expressions, ``DISTINCT``, aliases
* ``FROM`` with multi-way ``JOIN ... ON`` (inner / left outer), derived
  tables (``(SELECT ...) alias``)
* ``WHERE``, ``GROUP BY``, ``HAVING``, ``ORDER BY ... ASC|DESC``, ``LIMIT``
* aggregates (count/sum/avg/min/max, ``COUNT(DISTINCT ...)``)
* scalar functions, ``CASE WHEN``, ``BETWEEN``, ``IN (...)``, ``LIKE``,
  ``IS [NOT] NULL``, arithmetic, string/date helpers
* DDL/DML: ``CREATE TABLE`` (with ``STORED AS``), ``CREATE TABLE AS
  SELECT``, ``DROP TABLE``, ``INSERT OVERWRITE TABLE ... SELECT``
"""

from repro.sql.lexer import Lexer, Token, TokenType
from repro.sql.parser import Parser, parse_script, parse_statement, parse_expression
from repro.sql import ast

__all__ = [
    "Lexer",
    "Token",
    "TokenType",
    "Parser",
    "parse_script",
    "parse_statement",
    "parse_expression",
    "ast",
]
