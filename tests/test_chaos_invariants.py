"""The chaos harness and its lease-ledger audit (gang checkout under
daemon crashes, executor slots, invariant enforcement, replay)."""

import pytest

from repro import connect
from repro.common.config import FAULT_SPEC, RETRY_FALLBACK
from repro.simulate.chaos import (
    CHAOS_QUERIES,
    ChaosInvariantError,
    assert_clean_ledger,
    generate_schedule,
    run_chaos,
    verify_replay,
)
from repro.simulate.faults import FaultPlan
from repro.simulate.leases import LeaseLedger

from .conftest import build_big_warehouse

QUERY = "SELECT grp, count(*) FROM facts GROUP BY grp"


def _run_with_faults(engine, spec, queries=2, **conf):
    hdfs, metastore = build_big_warehouse()
    session = connect(engine=engine, hdfs=hdfs, metastore=metastore)
    session.conf.set(FAULT_SPEC, spec)
    for key, value in conf.items():
        session.conf.set(key, value)
    try:
        handles = [session.submit(QUERY) for _ in range(queries)]
        scheduler = session.scheduler
        scheduler.drain()
        for handle in handles:
            assert handle.result().rows
        return scheduler.runtime.leases.ledger
    finally:
        session.close()


# -- ledger audit unit tests --------------------------------------------------

def test_clean_ledger_passes():
    ledger = LeaseLedger()
    ledger.events.append((1.0, "grant", "node1.slots", "q1"))
    ledger.events.append((2.0, "release", "node1.slots", "q1"))
    assert_clean_ledger(ledger)  # no raise


def test_double_release_detected():
    ledger = LeaseLedger()
    ledger.events.append((1.0, "grant", "node1.slots", "q1"))
    ledger.events.append((2.0, "release", "node1.slots", "q1"))
    ledger.events.append((3.0, "release", "node1.slots", "q1"))
    with pytest.raises(ChaosInvariantError, match="released more"):
        assert_clean_ledger(ledger)


def test_lost_slot_detected():
    ledger = LeaseLedger()
    ledger.owner_usage("q7").held = 2
    with pytest.raises(ChaosInvariantError, match="q7=2"):
        assert_clean_ledger(ledger)


def test_long_lived_owners_exempt():
    ledger = LeaseLedger()
    ledger.owner_usage("llap-daemons").held = 12
    ledger.owner_usage("-").held = 1
    assert_clean_ledger(ledger)  # parked daemons hold slots by design


def test_oversubscription_detected():
    ledger = LeaseLedger()
    ledger.max_in_use["node1.slots"] = 5
    ledger.capacity["node1.slots"] = 4
    with pytest.raises(ChaosInvariantError, match="oversubscribed"):
        assert_clean_ledger(ledger)


# -- gang leases under crashes (DataMPI all-or-nothing) -----------------------

def test_datampi_gang_checkout_survives_crash():
    """A node crash mid-job trips the gang; ``release_unclaimed`` plus
    the rank finallys must leave zero orphaned slots in the ledger."""
    ledger = _run_with_faults(
        "datampi", "seed:3; crash:w2@6-60", RETRY_FALLBACK="hadoop")
    assert ledger.gang_grants  # the all-or-nothing grants happened
    assert_clean_ledger(ledger)


def test_datampi_repeated_crashes_clean_ledger():
    ledger = _run_with_faults(
        "datampi", "seed:5; crash:w1@4-30; crash:w3@8-40",
        RETRY_FALLBACK="hadoop")
    assert_clean_ledger(ledger)


def test_llap_executor_slots_survive_daemon_crash():
    """Killing a daemon mid-query interrupts its fragments; every
    executor-slot lease must be returned (the daemons' own node slots
    are exempt long-lived holders)."""
    ledger = _run_with_faults("llap", "seed:2; crash:w1@5-80")
    assert_clean_ledger(ledger)
    # every query owner balanced exactly
    for owner, usage in ledger.usage.items():
        if owner.startswith("wq"):
            assert usage.held == 0, owner


# -- schedule generation ------------------------------------------------------

def test_generate_schedule_is_deterministic():
    first = generate_schedule(42)
    second = generate_schedule(42)
    assert first.spec == second.spec
    assert first.spec != generate_schedule(43).spec


def test_generated_schedules_parse_and_target_distinct_workers():
    for seed in range(20):
        schedule = generate_schedule(seed)
        plan = FaultPlan.parse(schedule.spec)  # grammar + overlap checks
        targeted = [c.worker for c in plan.node_crashes]
        targeted += [s.worker for s in plan.stragglers]
        targeted += [d.worker for d in plan.drains]
        assert len(targeted) == len(set(targeted)), schedule.spec
        assert any(c.recover_at is not None for c in plan.node_crashes)


def test_generate_schedule_needs_enough_workers():
    with pytest.raises(Exception):
        generate_schedule(0, num_workers=2)


# -- the chaos runner ---------------------------------------------------------

@pytest.mark.parametrize("engine,seed", [
    ("hadoop", 0),
    ("datampi", 3),  # scale-up mid-spawn: the stale-hostfile regression
    ("llap", 2),  # rerun-vs-reducer slot deadlock regression
])
def test_chaos_invariants_hold(engine, seed):
    report = run_chaos(engine, seed=seed)
    assert report.queries == len(CHAOS_QUERIES)
    assert report.succeeded == report.queries
    assert report.deadline_misses == 0
    assert report.fault_events
    assert report.makespan > 0
    # the repeated first query produced the same digest both times
    assert report.row_digests[0] == report.row_digests[-1]


def test_chaos_with_deadline_counts_misses():
    report = run_chaos("llap", seed=0, deadline=40.0)
    assert report.deadline_misses > 0
    assert report.succeeded + report.deadline_misses == report.queries


def test_chaos_replay_is_deterministic():
    report = verify_replay("llap", 2)
    assert report.succeeded == report.queries
