"""Query planning: semantic analysis, logical tree, physical MR DAG.

Pipeline (paper Fig 3): HiveQL text -> AST (:mod:`repro.sql`) -> bound
logical operator tree (:mod:`repro.plan.analyzer`) -> optimized
(:mod:`repro.plan.optimizer`, pushdown happens during analysis) ->
physical plan: a DAG of MapReduce jobs (:mod:`repro.plan.physical`)
shared *verbatim* by the Hadoop and DataMPI engines.
"""

from repro.plan.logical import (
    LogicalNode,
    Scan,
    Filter,
    Project,
    JoinNode,
    AggregateNode,
    SortNode,
    LimitNode,
    DistinctNode,
    RowSignature,
    FieldInfo,
)
from repro.plan.analyzer import Analyzer
from repro.plan.physical import (
    PhysicalPlan,
    MRJob,
    MapInput,
    PhysicalCompiler,
    explain_plan,
)

__all__ = [
    "LogicalNode",
    "Scan",
    "Filter",
    "Project",
    "JoinNode",
    "AggregateNode",
    "SortNode",
    "LimitNode",
    "DistinctNode",
    "RowSignature",
    "FieldInfo",
    "Analyzer",
    "PhysicalPlan",
    "MRJob",
    "MapInput",
    "PhysicalCompiler",
    "explain_plan",
]
