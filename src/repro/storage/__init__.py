"""Storage substrate: simulated HDFS, file formats, metastore.

* :mod:`repro.storage.formats` — Text, Sequence and ORC encodings.  Rows
  are kept in memory for functional execution, but each format computes
  real encoded byte sizes (ORC actually dictionary/RLE-encodes and
  zlib-compresses column streams) so the cost model charges realistic I/O.
* :mod:`repro.storage.hdfs` — NameNode/DataNode simulation: block
  placement, replication, locality-aware input splits.
* :mod:`repro.storage.metastore` — Hive Metastore: table name → schema,
  location, format.
"""

from repro.storage.formats.base import FileFormat, StoredFile, ScanResult, get_format
from repro.storage.formats.text import TextFormat
from repro.storage.formats.sequence import SequenceFormat
from repro.storage.formats.orc import OrcFormat
from repro.storage.hdfs import HDFS, DataFile, FileSplit
from repro.storage.metastore import Metastore, TableDescriptor

__all__ = [
    "FileFormat",
    "StoredFile",
    "ScanResult",
    "get_format",
    "TextFormat",
    "SequenceFormat",
    "OrcFormat",
    "HDFS",
    "DataFile",
    "FileSplit",
    "Metastore",
    "TableDescriptor",
]
