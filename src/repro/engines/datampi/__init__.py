"""The DataMPI engine: bipartite O/A execution with MPI-style shuffle.

This package is the reproduction of the paper's contribution:

* :mod:`repro.engines.datampi.mpi` — simulated MPI point-to-point layer
  (``MPI_Isend``-style non-blocking requests over the DES network) and a
  dynamic barrier used by the blocking communication style.
* :mod:`repro.engines.datampi.buffers` — the buffer manager: Send
  Partition Lists (SPL), bounded send queue, A-side receive manager with
  memory accounting and spill.
* :mod:`repro.engines.datampi.engine` — the engine: ``mpidrun`` startup,
  O-task scheduling with overlapped shuffle (blocking or non-blocking
  style), A-task merge/reduce, and the parallelism/memory tuning knobs
  (``hive.datampi.*``).
"""

from repro.engines.datampi.engine import DataMPIEngine, DataMPICosts

__all__ = ["DataMPIEngine", "DataMPICosts"]
