"""Bound logical operator tree.

Every node's expressions are already *bound*: column names resolved to
positions in the child's row signature (``InputRef``).  A
:class:`RowSignature` describes each intermediate row shape, tracking the
source binding (table alias) of every field so qualified names resolve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.errors import SemanticError
from repro.common.rows import Column, DataType, Schema
from repro.exec.expressions import BoundExpression, InputRef
from repro.storage.metastore import TableDescriptor


@dataclass(frozen=True)
class FieldInfo:
    """One field of an intermediate row: where it came from and its type."""

    binding: Optional[str]  # table alias (lowercase) or None for derived
    name: str  # lowercase
    dtype: DataType


class RowSignature:
    """Ordered fields with alias-aware name resolution."""

    def __init__(self, fields: List[FieldInfo]):
        self.fields = list(fields)

    @classmethod
    def from_schema(cls, schema: Schema, binding: Optional[str]) -> "RowSignature":
        return cls(
            [
                FieldInfo(binding, column.name.lower(), column.dtype)
                for column in schema.columns
            ]
        )

    def concat(self, other: "RowSignature") -> "RowSignature":
        return RowSignature(self.fields + other.fields)

    def resolve(self, name: str, table: Optional[str] = None) -> Tuple[int, DataType]:
        """Resolve a (possibly qualified) column name to (index, type)."""
        name = name.lower()
        table = table.lower() if table else None
        matches = [
            (position, info)
            for position, info in enumerate(self.fields)
            if info.name == name and (table is None or info.binding == table)
        ]
        if not matches:
            qualified = f"{table}.{name}" if table else name
            raise SemanticError(f"column not found: {qualified}")
        if len(matches) > 1:
            qualified = f"{table}.{name}" if table else name
            raise SemanticError(f"ambiguous column: {qualified}")
        position, info = matches[0]
        return position, info.dtype

    def to_schema(self) -> Schema:
        """Flatten to a plain schema (deduplicating names positionally)."""
        taken = set()
        columns = []
        for info in self.fields:
            name = info.name
            if name in taken:
                suffix = 2
                while f"{name}_{suffix}" in taken:
                    suffix += 1
                name = f"{name}_{suffix}"
            taken.add(name)
            columns.append(Column(name, info.dtype))
        return Schema(columns)

    def input_refs(self) -> List[InputRef]:
        return [
            InputRef(position, info.dtype) for position, info in enumerate(self.fields)
        ]

    def __len__(self) -> int:
        return len(self.fields)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{info.binding + '.' if info.binding else ''}{info.name}:{info.dtype.value}"
            for info in self.fields
        )
        return f"RowSignature({inner})"


# ---------------------------------------------------------------------------
# logical nodes
# ---------------------------------------------------------------------------

class LogicalNode:
    """Base: every node exposes its output signature and children."""

    signature: RowSignature

    def children(self) -> List["LogicalNode"]:
        return []

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class Scan(LogicalNode):
    table: TableDescriptor
    binding: str
    signature: RowSignature = None

    def __post_init__(self):
        if self.signature is None:
            schema = getattr(self.table, "full_schema", self.table.schema)
            self.signature = RowSignature.from_schema(schema, self.binding)

    def describe(self) -> str:
        return f"Scan({self.table.name} as {self.binding})"


@dataclass
class Filter(LogicalNode):
    child: LogicalNode
    predicate: BoundExpression
    signature: RowSignature = None

    def __post_init__(self):
        if self.signature is None:
            self.signature = self.child.signature

    def children(self) -> List[LogicalNode]:
        return [self.child]


@dataclass
class Project(LogicalNode):
    child: LogicalNode
    expressions: List[BoundExpression]
    names: List[str]
    signature: RowSignature = None

    def __post_init__(self):
        if self.signature is None:
            self.signature = RowSignature(
                [
                    FieldInfo(None, name.lower(), expression.dtype)
                    for name, expression in zip(self.names, self.expressions)
                ]
            )

    def children(self) -> List[LogicalNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Project({', '.join(self.names)})"


@dataclass
class JoinNode(LogicalNode):
    left: LogicalNode
    right: LogicalNode
    join_type: str  # 'inner' | 'left'
    left_keys: List[BoundExpression] = field(default_factory=list)  # over left sig
    right_keys: List[BoundExpression] = field(default_factory=list)  # over right sig
    residual: Optional[BoundExpression] = None  # over concat signature
    signature: RowSignature = None

    def __post_init__(self):
        if self.signature is None:
            self.signature = self.left.signature.concat(self.right.signature)

    def children(self) -> List[LogicalNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        kind = "cross" if not self.left_keys else self.join_type
        return f"Join[{kind}]({len(self.left_keys)} keys)"


@dataclass
class AggregateCall:
    aggregate: object  # sql.functions.Aggregate
    argument: Optional[BoundExpression]  # None for COUNT(*)
    name: str
    dtype: DataType
    distinct: bool = False


@dataclass
class AggregateNode(LogicalNode):
    child: LogicalNode
    group_expressions: List[BoundExpression]
    group_names: List[str]
    calls: List[AggregateCall]
    signature: RowSignature = None

    def __post_init__(self):
        if self.signature is None:
            fields = [
                FieldInfo(None, name.lower(), expression.dtype)
                for name, expression in zip(self.group_names, self.group_expressions)
            ]
            fields += [FieldInfo(None, call.name.lower(), call.dtype) for call in self.calls]
            self.signature = RowSignature(fields)

    def children(self) -> List[LogicalNode]:
        return [self.child]

    @property
    def has_distinct(self) -> bool:
        return any(call.distinct for call in self.calls)

    def describe(self) -> str:
        aggs = ", ".join(call.name for call in self.calls)
        return f"Aggregate(groups={len(self.group_expressions)}, aggs=[{aggs}])"


@dataclass
class SortNode(LogicalNode):
    child: LogicalNode
    sort_expressions: List[BoundExpression]  # over child signature
    ascending: List[bool]
    signature: RowSignature = None

    def __post_init__(self):
        if self.signature is None:
            self.signature = self.child.signature

    def children(self) -> List[LogicalNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Sort({len(self.sort_expressions)} keys)"


@dataclass
class LimitNode(LogicalNode):
    child: LogicalNode
    limit: int
    signature: RowSignature = None

    def __post_init__(self):
        if self.signature is None:
            self.signature = self.child.signature

    def children(self) -> List[LogicalNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Limit({self.limit})"


@dataclass
class UnionNode(LogicalNode):
    """UNION ALL: concatenation of same-arity child streams."""

    inputs: List[LogicalNode] = field(default_factory=list)
    signature: RowSignature = None

    def __post_init__(self):
        if self.signature is None:
            self.signature = self.inputs[0].signature

    def children(self) -> List[LogicalNode]:
        return list(self.inputs)

    def describe(self) -> str:
        return f"UnionAll({len(self.inputs)} branches)"


@dataclass
class DistinctNode(LogicalNode):
    child: LogicalNode
    signature: RowSignature = None

    def __post_init__(self):
        if self.signature is None:
            self.signature = self.child.signature

    def children(self) -> List[LogicalNode]:
        return [self.child]


def explain_logical(node: LogicalNode, indent: int = 0) -> str:
    """ASCII rendering of a logical tree (EXPLAIN output, tests/docs)."""
    lines = ["  " * indent + node.describe()]
    for child in node.children():
        lines.append(explain_logical(child, indent + 1))
    return "\n".join(lines)
