"""Table/column statistics: collection, selectivity, freshness.

Two tiers, mirroring Hive:

* **Basic stats** (``row_count`` / ``total_bytes``) are cheap file
  metadata — the driver auto-gathers them after INSERT/CTAS (like
  ``hive.stats.autogather``) without touching a single row.
* **Column stats** (NDV sketch, heavy-hitter sketch, min/max, null
  count) require a scan and are collected only by
  ``ANALYZE TABLE t COMPUTE STATISTICS FOR COLUMNS``.

Conventions match the rest of the catalog: ``row_count`` counts
*stored* rows (what operators actually process, same as
``TableDescriptor.row_count``) while ``total_bytes`` is *logical*
bytes (scale-multiplied, what the cost model charges — same as
``_table_bytes`` in the physical compiler).  With only basic stats and
no filter conjuncts, every estimate collapses to the raw numbers the
planner used before stats existed, so plans cannot change until
someone runs ANALYZE.

Freshness is a *fingerprint*, not a timestamp: the ``(path, scale,
rows, bytes)`` tuple of every file in the table directory at
collection time.  ``Metastore.get_table_stats`` recomputes it read-only
and silently returns nothing when it no longer matches, so stale stats
degrade to "no stats" instead of wrong plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.stats.sketches import (
    DEFAULT_HEAVY_CAPACITY,
    DEFAULT_NDV_K,
    KMVSketch,
    SpaceSavingSketch,
)

# Hive's defaults for un-estimable predicates (ndv unknown, literal
# outside the observed range, non-numeric range comparison).
DEFAULT_EQUALS_SELECTIVITY = 1.0 / 16.0
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0

Fingerprint = Tuple[Tuple[str, float, int, int], ...]


@dataclass
class ColumnStats:
    """Statistics for one column, built from a full scan."""

    name: str
    count: int = 0           # stored rows seen (incl. nulls)
    null_count: int = 0
    min_value: object = None  # numeric columns only
    max_value: object = None
    ndv_sketch: KMVSketch = field(default_factory=lambda: KMVSketch(DEFAULT_NDV_K))
    heavy: SpaceSavingSketch = field(
        default_factory=lambda: SpaceSavingSketch(DEFAULT_HEAVY_CAPACITY)
    )

    def observe(self, value: object) -> None:
        self.count += 1
        if value is None:
            self.null_count += 1
            return
        self.ndv_sketch.add(value)
        self.heavy.add(value)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if self.min_value is None or value < self.min_value:
                self.min_value = value
            if self.max_value is None or value > self.max_value:
                self.max_value = value

    def merge(self, other: "ColumnStats") -> "ColumnStats":
        merged = ColumnStats(
            name=self.name,
            count=self.count + other.count,
            null_count=self.null_count + other.null_count,
            ndv_sketch=self.ndv_sketch.merge(other.ndv_sketch),
            heavy=self.heavy.merge(other.heavy),
        )
        mins = [v for v in (self.min_value, other.min_value) if v is not None]
        maxs = [v for v in (self.max_value, other.max_value) if v is not None]
        merged.min_value = min(mins) if mins else None
        merged.max_value = max(maxs) if maxs else None
        return merged

    @property
    def ndv(self) -> float:
        return max(1.0, self.ndv_sketch.estimate())

    @property
    def non_null_fraction(self) -> float:
        if self.count <= 0:
            return 1.0
        return (self.count - self.null_count) / self.count

    def heavy_hitters(self, min_share: float) -> List[Tuple[object, float]]:
        return self.heavy.heavy_hitters(min_share)

    def selectivity(self, op: str, literal: object) -> float:
        """Estimated fraction of rows satisfying ``col <op> literal``."""
        non_null = self.non_null_fraction
        if op == "=":
            share = self.heavy.share(literal)
            if share is not None:
                return _clamp(share)
            return _clamp(non_null / self.ndv)
        if op in ("<", "<=", ">", ">="):
            lo, hi = self.min_value, self.max_value
            if (
                lo is not None
                and hi is not None
                and isinstance(literal, (int, float))
                and not isinstance(literal, bool)
            ):
                if hi <= lo:
                    span_frac = 1.0 if _passes(lo, op, literal) else 0.0
                else:
                    # linear interpolation over the observed range
                    position = (float(literal) - lo) / (hi - lo)
                    position = min(1.0, max(0.0, position))
                    span_frac = position if op in ("<", "<=") else 1.0 - position
                return _clamp(span_frac * non_null)
            return _clamp(DEFAULT_RANGE_SELECTIVITY * non_null)
        return 1.0

    def summary(self) -> Dict[str, object]:
        return {
            "column": self.name,
            "count": self.count,
            "nulls": self.null_count,
            "ndv": round(self.ndv, 1),
            "min": self.min_value,
            "max": self.max_value,
            "top": [
                (value, round(share, 4))
                for value, share in self.heavy.heavy_hitters(0.05)[:5]
            ],
        }


def _passes(value: object, op: str, literal: object) -> bool:
    try:
        if op == "<":
            return value < literal
        if op == "<=":
            return value <= literal
        if op == ">":
            return value > literal
        return value >= literal
    except TypeError:
        return True


def _clamp(fraction: float) -> float:
    return min(1.0, max(0.0, fraction))


@dataclass
class TableStats:
    """Statistics for one table at a specific data fingerprint."""

    table: str
    row_count: int                 # stored rows across all part-files
    total_bytes: float             # logical (scale-multiplied) bytes
    fingerprint: Fingerprint
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    @property
    def has_column_stats(self) -> bool:
        return bool(self.columns)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name.lower())

    def conjunct_selectivity(
        self, conjuncts: List[Tuple[str, str, object]]
    ) -> float:
        """Combined selectivity of ANDed ``(column, op, literal)``
        conjuncts, assuming independence.  Conjuncts on columns without
        stats contribute 1.0, so basic-only stats never shrink an
        estimate."""
        selectivity = 1.0
        for column, op, literal in conjuncts:
            stats = self.columns.get(column.lower())
            if stats is None:
                continue
            selectivity *= stats.selectivity(op, literal)
        return _clamp(selectivity)

    def summary(self) -> Dict[str, object]:
        return {
            "table": self.table,
            "row_count": self.row_count,
            "total_bytes": round(self.total_bytes, 1),
            "columns": sorted(self.columns),
        }


def table_fingerprint(hdfs, location: str) -> Fingerprint:
    """Cheap content identity of a table directory (no row access)."""
    return tuple(
        (f.path, f.scale, f.stored.row_count, f.stored.total_bytes)
        for f in hdfs.list_dir(location)
    )


def collect_table_stats(hdfs, table, with_columns: bool = True) -> TableStats:
    """Scan *table*'s files and build a :class:`TableStats`.

    Per-file column sketches are built independently and merged — the
    same block-wise shape a distributed stats task would use, and what
    the property tests exercise for associativity.  With
    ``with_columns=False`` only file metadata is read (basic stats).
    """
    files = hdfs.list_dir(table.location)
    stats = TableStats(
        table=table.name,
        row_count=sum(f.row_count for f in files),
        total_bytes=sum(f.logical_bytes for f in files),
        fingerprint=table_fingerprint(hdfs, table.location),
    )
    if not with_columns:
        return stats
    names = [column.name.lower() for column in table.full_schema.columns]
    merged: Dict[str, ColumnStats] = {}
    for data_file in files:
        per_file = {name: ColumnStats(name=name) for name in names}
        for row in data_file.rows:
            for position, name in enumerate(names):
                if position < len(row):
                    per_file[name].observe(row[position])
        for name, column_stats in per_file.items():
            merged[name] = (
                column_stats if name not in merged
                else merged[name].merge(column_stats)
            )
    stats.columns = merged
    return stats
