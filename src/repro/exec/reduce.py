"""Reduce-side logics: aggregate finalization, reduce-side join, sort.

A reduce task receives groups of ``(key, [values])`` where each value is
``(tag, field, field, ...)``; the logic transforms a group into output
rows and pushes them into a downstream map-operator pipeline (having
filters, projections, limits, file sink) — mirroring Hive's reduce-side
operator tree rooted at a GroupBy/Join operator.
"""

from __future__ import annotations

import functools
import operator
from itertools import chain, groupby
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import ExecutionError
from repro.common.kv import KeyValue
from repro.common.rows import compare_values
from repro.exec.operators import MapOperator

Row = Tuple[object, ...]
Value = Tuple[object, ...]  # (tag, *fields)


# ---------------------------------------------------------------------------
# descriptors
# ---------------------------------------------------------------------------

@dataclass
class ReduceAggregateDesc:
    """Finalize GROUP BY: merge map-side partials (or update raw values)."""

    key_arity: int
    aggregates: List[object]  # Aggregate instances, in select order
    inputs_are_partials: bool = True
    partial_arities: List[int] = field(default_factory=list)


@dataclass
class ReduceJoinDesc:
    """Reduce-side (common) join of two tagged inputs on the group key."""

    join_type: str  # 'inner' | 'left'
    left_width: int
    right_width: int


@dataclass
class ReduceSortDesc:
    """Identity pass: the framework's key sort provides the order."""


@dataclass
class ReduceDistinctDesc:
    """Emit each distinct key once (SELECT DISTINCT / dedup stages)."""

    key_arity: int


ReduceLogicDesc = object


# ---------------------------------------------------------------------------
# runtime logics
# ---------------------------------------------------------------------------

class ReduceLogic:
    def __init__(self, desc: ReduceLogicDesc, downstream: MapOperator):
        self.desc = desc
        self.downstream = downstream

    def reduce(self, key: Row, values: Sequence[Value]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        self.downstream.close()


class AggregateReduceLogic(ReduceLogic):
    def __init__(self, desc: ReduceAggregateDesc, downstream: MapOperator):
        super().__init__(desc, downstream)
        if desc.inputs_are_partials and len(desc.partial_arities) != len(desc.aggregates):
            raise ExecutionError("partial_arities must match aggregates")

    def reduce(self, key: Row, values: Sequence[Value]) -> None:
        desc = self.desc
        accumulators = [aggregate.create() for aggregate in desc.aggregates]
        if desc.inputs_are_partials:
            for value in values:
                fields = value[1:]  # strip tag
                offset = 0
                for position, aggregate in enumerate(desc.aggregates):
                    arity = desc.partial_arities[position]
                    partial = fields[offset : offset + arity]
                    accumulators[position] = aggregate.merge(accumulators[position], partial)
                    offset += arity
        else:
            for value in values:
                fields = value[1:]
                for position, aggregate in enumerate(desc.aggregates):
                    accumulators[position] = aggregate.update(
                        accumulators[position], fields[position]
                    )
        results = tuple(
            aggregate.result(accumulator)
            for aggregate, accumulator in zip(desc.aggregates, accumulators)
        )
        self.downstream.process(tuple(key) + results)


class JoinReduceLogic(ReduceLogic):
    """Buffers the left (tag 0) rows, streams the right (tag 1) rows."""

    def reduce(self, key: Row, values: Sequence[Value]) -> None:
        desc = self.desc
        # two comprehension passes beat one Python loop with a branch;
        # the right side goes first so a right-empty inner-join group
        # returns before materializing its left rows
        right_rows = [value[1:] for value in values if value[0] != 0]
        if right_rows:
            left_rows = [value[1:] for value in values if value[0] == 0]
            batch = [left + right for left in left_rows for right in right_rows]
            self.downstream.process_rows(batch)
        elif desc.join_type == "left":
            nulls = (None,) * desc.right_width
            self.downstream.process_rows(
                [value[1:] + nulls for value in values if value[0] == 0]
            )


class SortReduceLogic(ReduceLogic):
    def reduce(self, key: Row, values: Sequence[Value]) -> None:
        self.downstream.process_rows([value[1:] for value in values])


class DistinctReduceLogic(ReduceLogic):
    def reduce(self, key: Row, values: Sequence[Value]) -> None:
        self.downstream.process(tuple(key))


def build_reduce_logic(desc: ReduceLogicDesc, downstream: MapOperator) -> ReduceLogic:
    if isinstance(desc, ReduceAggregateDesc):
        return AggregateReduceLogic(desc, downstream)
    if isinstance(desc, ReduceJoinDesc):
        return JoinReduceLogic(desc, downstream)
    if isinstance(desc, ReduceSortDesc):
        return SortReduceLogic(desc, downstream)
    if isinstance(desc, ReduceDistinctDesc):
        return DistinctReduceLogic(desc, downstream)
    raise ExecutionError(f"unknown reduce logic {type(desc).__name__}")


# ---------------------------------------------------------------------------
# framework-side sort & group helpers (shared by both engines)
# ---------------------------------------------------------------------------

def key_comparator(directions: Optional[Sequence[bool]] = None):
    """cmp function over key tuples honoring per-field ASC/DESC flags."""

    def compare(left: Row, right: Row) -> int:
        for position in range(min(len(left), len(right))):
            outcome = compare_values(left[position], right[position])
            if outcome != 0:
                if directions is not None and position < len(directions):
                    return outcome if directions[position] else -outcome
                return outcome
        return len(left) - len(right)

    return compare


_key_of = operator.attrgetter("key")


def _keys_native_sortable(pairs: List[KeyValue]) -> bool:
    """True when builtin tuple order coincides with :func:`key_comparator`.

    That holds when no key field is ``None`` (NULLS FIRST differs from a
    ``TypeError``) or ``bool`` (the comparator coerces the other operand),
    and all keys share one arity (the comparator breaks ties by length
    *without* direction flipping).  Beyond those cases the comparator is
    plain ``<``/``>``, exactly the builtin order.
    """
    if not pairs:
        return True
    keys = list(map(_key_of, pairs))
    if len(set(map(len, keys))) != 1:
        return False
    part_types = set(map(type, chain.from_iterable(keys)))
    if type(None) in part_types:
        return False
    # isinstance(..., bool) in the per-field loop this replaces only
    # ever matched exact bools: bool is final (cannot be subclassed)
    return bool not in part_types


def sort_pairs(
    pairs: List[KeyValue], directions: Optional[Sequence[bool]] = None
) -> List[KeyValue]:
    """Sort shuffle pairs by key (stable, direction-aware).

    Every reduce task sorts its input, so the common cases — all fields
    ascending, or all descending — go through the builtin tuple sort
    (C-speed) when the keys are provably order-compatible; anything else
    (NULLs, bools, mixed directions, incomparable type mixes) takes the
    comparator path.
    """
    if directions is None or all(directions):
        native_reverse: Optional[bool] = False
    elif not any(directions) and pairs and len(directions) >= len(pairs[0].key):
        native_reverse = True
    else:
        native_reverse = None
    if native_reverse is not None and _keys_native_sortable(pairs):
        try:
            return sorted(pairs, key=_key_of, reverse=native_reverse)
        except TypeError:
            pass  # incomparable type mix: use the Hive comparator
    compare = key_comparator(directions)
    return sorted(pairs, key=functools.cmp_to_key(lambda a, b: compare(a.key, b.key)))


_value_of = operator.attrgetter("value")


def group_sorted_pairs(
    pairs: Iterable[KeyValue],
) -> Iterable[Tuple[Row, List[Value]]]:
    """Group consecutive equal keys of an already-sorted pair stream.

    ``itertools.groupby`` does the consecutive-equality scan in C; the
    per-group value extraction is a single ``map`` pass."""
    for key, group in groupby(pairs, key=_key_of):
        yield key, list(map(_value_of, group))


def merge_sorted_runs(
    runs: List[List[KeyValue]], directions: Optional[Sequence[bool]] = None
) -> List[KeyValue]:
    """K-way merge of sorted runs (Hadoop's on-disk merge, DataMPI's
    in-memory merge both use this)."""
    import heapq

    compare = key_comparator(directions)
    key_fn = functools.cmp_to_key(compare)
    merged = heapq.merge(*runs, key=lambda pair: key_fn(pair.key))
    return list(merged)
