"""Tests for the simulated Hadoop engine: timing structure + correctness."""

import pytest

from repro import connect
from repro.engines.base import compare_result_rows
from repro.engines.hadoop import HadoopCosts, HadoopEngine
from repro.simulate import ClusterSpec


@pytest.fixture()
def sessions(big_warehouse):
    hdfs, metastore = big_warehouse
    return (
        connect(engine="local", hdfs=hdfs, metastore=metastore),
        connect(engine="hadoop", hdfs=hdfs, metastore=metastore),
    )


GROUP_QUERY = "SELECT grp, count(*) c, sum(val) s FROM facts GROUP BY grp ORDER BY grp"


class TestCorrectness:
    def test_matches_reference(self, sessions):
        local, hadoop = sessions
        expected = local.query(GROUP_QUERY).rows
        actual = hadoop.query(GROUP_QUERY).rows
        assert compare_result_rows(expected, actual, ordered=True)

    def test_map_only_query(self, sessions):
        local, hadoop = sessions
        sql = "SELECT k FROM facts WHERE val > 99.5"
        assert compare_result_rows(
            local.query(sql).rows, hadoop.query(sql).rows, ordered=False
        )


class TestTimingStructure:
    def test_job_timing_monotonic(self, sessions):
        _local, hadoop = sessions
        result = hadoop.query(GROUP_QUERY)
        jobs = result.execution.jobs
        assert len(jobs) == 2
        for job in jobs:
            assert job.submitted <= job.first_task_started <= job.shuffle_done <= job.finished
        assert jobs[0].finished <= jobs[1].submitted  # sequential jobs

    def test_startup_includes_submit_and_jvm(self, sessions):
        _local, hadoop = sessions
        result = hadoop.query(GROUP_QUERY)
        costs = HadoopCosts()
        expected_min = costs.job_submit + costs.schedule_delay
        assert result.execution.jobs[0].startup >= expected_min

    def test_task_records(self, sessions):
        _local, hadoop = sessions
        result = hadoop.query(GROUP_QUERY)
        job = result.execution.jobs[0]
        maps = [t for t in job.tasks if t.kind == "map"]
        reduces = [t for t in job.tasks if t.kind == "reduce"]
        assert len(maps) == job.num_maps
        assert len(reduces) == job.num_reducers
        assert all(t.finished >= t.started >= t.scheduled for t in maps)
        assert sum(t.rows_read for t in maps) == 4000

    def test_waves_respect_slots(self, big_warehouse):
        hdfs, metastore = big_warehouse
        spec = ClusterSpec(num_nodes=3, slots_per_node=2)  # 4 map slots total
        session = connect(engine="hadoop", hdfs=hdfs, metastore=metastore, spec=spec)
        result = session.query("SELECT count(*) FROM facts")
        job = result.execution.jobs[0]
        maps = sorted(
            (t for t in job.tasks if t.kind == "map"), key=lambda t: t.started
        )
        if len(maps) > 4:
            # the 5th map cannot start before some first-wave map finished
            first_wave_end = min(t.finished for t in maps[:4])
            assert maps[4].started >= first_wave_end - 1e-6

    def test_shuffle_bytes_accounted(self, sessions):
        _local, hadoop = sessions
        result = hadoop.query(GROUP_QUERY)
        assert result.execution.jobs[0].shuffle_logical_bytes > 0

    def test_metrics_collection(self, sessions):
        _local, hadoop = sessions
        result = hadoop.query(GROUP_QUERY, with_metrics=True)
        samples = result.execution.metrics
        assert len(samples) > 10
        assert max(s.cpu_utilization for s in samples) > 0
        assert max(s.memory_used for s in samples) > 0

    def test_more_data_takes_longer(self, big_warehouse):
        hdfs, metastore = big_warehouse
        session = connect(engine="hadoop", hdfs=hdfs, metastore=metastore)
        small = session.query("SELECT count(*) FROM facts WHERE k < 100")
        big = session.query(GROUP_QUERY)
        # the grouped query shuffles and reduces; must cost more
        assert big.execution.total_seconds > 0
        assert small.execution.total_seconds > 0

    def test_deterministic(self, big_warehouse_factory):
        """Identically seeded warehouses give identical simulated times."""
        times = []
        for _ in range(2):
            hdfs, metastore = big_warehouse_factory()
            session = connect(engine="hadoop", hdfs=hdfs, metastore=metastore)
            times.append(session.query(GROUP_QUERY).execution.total_seconds)
        assert times[0] == times[1]


class TestCostKnobs:
    def test_slower_jvm_slows_job(self, big_warehouse):
        hdfs, metastore = big_warehouse
        fast = HadoopEngine(hdfs, costs=HadoopCosts(task_jvm_start=0.5))
        slow = HadoopEngine(hdfs, costs=HadoopCosts(task_jvm_start=3.0))
        from repro.core.driver import Driver

        fast_time = Driver(hdfs, metastore, fast).query(GROUP_QUERY).execution.total_seconds
        slow_time = Driver(hdfs, metastore, slow).query(GROUP_QUERY).execution.total_seconds
        assert slow_time > fast_time
