"""Concurrent multi-query workload scheduling (``repro.sched``).

One :class:`WorkloadScheduler` admits many in-flight queries into a
single shared simulated cluster: :meth:`Session.submit` returns a
:class:`QueryHandle` without advancing simulated time, and the handles'
``result()`` calls drain the shared simulation, interleaving Hadoop task
waves and DataMPI gang allocations from different queries on the same
node slots (never oversubscribed — see :mod:`repro.simulate.leases`).

Policies: ``fifo`` (slot arbitration in arrival order), ``fair``
(weighted per-pool slot shares with per-query max-min), ``capacity``
(fifo arbitration plus per-pool admission caps and bounded wait queues
that reject with :class:`~repro.common.errors.AdmissionRejectedError`).

See docs/scheduling.md for the paper mapping and semantics.
"""

from repro.sched.scheduler import (
    CANCELLED,
    FAILED,
    POLICIES,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    Pool,
    QueryHandle,
    WorkloadScheduler,
    jain_fairness_index,
    parse_pools,
)

__all__ = [
    "WorkloadScheduler",
    "QueryHandle",
    "Pool",
    "parse_pools",
    "jain_fairness_index",
    "POLICIES",
    "QUEUED",
    "RUNNING",
    "SUCCEEDED",
    "FAILED",
    "CANCELLED",
]
