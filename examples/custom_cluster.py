#!/usr/bin/env python
"""Run your own workload on a custom simulated cluster.

Demonstrates the lower-level API: a hand-defined star-schema workload, a
non-default :class:`ClusterSpec` (more nodes, faster network — the
paper's future-work point 2: "evaluate on different high-performance
clusters"), and reading the dstat-style resource samples.

Run with:  python examples/custom_cluster.py
"""

import random

from repro import ClusterSpec, HDFS, Metastore, connect
from repro.common.rows import Schema
from repro.common.units import GB, MB


def build(hdfs, metastore, rng):
    facts = Schema.parse(
        "sale_id int, store_id int, product string, amount double, day string"
    )
    stores = Schema.parse("store_id int, region string, city string")

    store_rows = [
        (i, rng.choice(["NORTH", "SOUTH", "EAST", "WEST"]), f"city{i % 40}")
        for i in range(200)
    ]
    fact_rows = [
        (
            i,
            rng.randrange(200),
            rng.choice(["widget", "gadget", "doohickey", "gizmo"]),
            round(rng.uniform(1, 500), 2),
            f"2015-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
        )
        for i in range(30000)
    ]
    from repro.storage.formats.base import get_format

    for name, schema, rows, logical in (
        ("sales", facts, fact_rows, 24 * GB),
        ("stores", stores, store_rows, 8 * MB),
    ):
        table = metastore.create_table(name, schema, format_name="orc")
        actual = get_format("orc").build(schema, rows).total_bytes
        hdfs.write(f"{table.location}/part-00000", schema, rows,
                   format_name="orc", scale=logical / actual)


QUERY = """
SELECT region, product, sum(amount) AS revenue, count(*) AS sales
FROM sales s JOIN stores st ON s.store_id = st.store_id
WHERE day BETWEEN '2015-03-01' AND '2015-09-30'
GROUP BY region, product
ORDER BY revenue DESC
LIMIT 10
"""


def main():
    rng = random.Random(7)
    # a bigger, faster cluster than the paper's testbed: 16 workers, 10 GigE
    spec = ClusterSpec(
        num_nodes=17,
        slots_per_node=8,
        nic_bandwidth=1170 * MB,  # 10 GigE
        disk_bandwidth=180 * MB,
        memory_per_node=32 * GB,
    )
    hdfs = HDFS(num_workers=spec.num_workers)
    metastore = Metastore(hdfs)
    build(hdfs, metastore, rng)

    for engine in ("hadoop", "datampi"):
        session = connect(engine=engine, hdfs=hdfs, metastore=metastore, spec=spec)
        result = session.query(QUERY, with_metrics=True)
        timing = result.execution
        peak_net = max((s.net_tx_bps for s in timing.metrics), default=0.0)
        print(f"== {engine} on 16x8-slot 10GigE cluster ==")
        print(f"  {timing.total_seconds:.1f}s simulated, "
              f"peak network {peak_net / MB:.0f} MB/s")
        for row in result.rows[:3]:
            print(f"  {row}")
        print()


if __name__ == "__main__":
    main()
