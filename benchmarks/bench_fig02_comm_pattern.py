"""Fig 2 — Hive's irregular communication characteristics.

(a)/(b): the collect-operation *time sequences* of map tasks — HiBench
AGGREGATE in Hive ends its maps over a wide, irregular window while
TeraSort's maps end almost simultaneously (paper: 19-25 s spread vs
centralized at 25 s).

(c)/(d): the *sizes* of the collected key-value pairs — AGGREGATE is
centralized around one size (~32 B in the paper), TPC-H Q3 is
multi-modal (~14 B and ~32 B) because different tables/columns flow
through the same shuffle.
"""

import statistics

from benchhelpers import emit, results_path, run_once

from repro.bench import fresh_hibench, fresh_tpch, run_hibench_query, run_script
from repro.reporting.figures import write_csv
from repro.workloads.terasort import load_teragen, terasort_job
from repro.workloads.tpch import tpch_query
from repro.engines.hadoop import HadoopEngine


def _collect_windows(tasks):
    """Per-map collect window: first map start -> last collect call.

    Absolute end times are dominated by wave structure at this cluster
    size, so (like the paper's per-task time-sequence plot) we compare
    the *per-task* collect windows: how long each map keeps collecting.
    """
    return [
        task.collect_samples[-1][0] - task.started
        for task in tasks
        if task.kind in ("map", "o") and task.collect_samples
    ]


def _map_tasks(run):
    return [
        task
        for result in run.results
        if result.execution is not None
        for job in result.execution.jobs[:1]  # first (scan) job
        for task in job.tasks
    ]


def _terasort_run(hdfs, metastore):
    engine = HadoopEngine(hdfs)
    plan = terasort_job()
    return engine.run_plan(plan)


def _experiment():
    out = {}

    hdfs, metastore = fresh_hibench(20, sample_uservisits=16000)
    aggregate = run_hibench_query("hadoop", hdfs, metastore, "aggregate")
    out["hive_windows"] = _collect_windows(_map_tasks(aggregate))

    load_teragen(hdfs, metastore, 20)
    tera = _terasort_run(hdfs, metastore)
    out["terasort_windows"] = _collect_windows(
        [task for job in tera.jobs for task in job.tasks]
    )

    # KV size histograms come from re-driving the first job's map side
    # functionally (the histogram lives in the operator context)
    from repro.engines.base import expand_job_splits, scan_split
    from repro.exec.mapper import ExecMapper
    from repro.exec.operators import ListCollector

    def histogram_for(hdfs, metastore, script, engine="local"):
        run = run_script(engine, hdfs, metastore, script)
        histogram = {}
        for result in run.results:
            if result.plan is None:
                continue
            job = result.plan.jobs[0]
            for tagged in expand_job_splits(job, hdfs):
                if not any(
                    type(op).__name__ == "ReduceSinkDesc" for op in tagged.operators
                ):
                    continue
                rows, _bytes = scan_split(tagged)
                mapper = ExecMapper(tagged.operators, ListCollector(), 16)
                mapper.process_batch(rows)
                mapper.close()
                for size, count in mapper.context.kv_size_histogram.items():
                    histogram[size] = histogram.get(size, 0) + count
            break  # first statement with a plan is enough
        return histogram

    hdfs2, metastore2 = fresh_hibench(20, sample_uservisits=12000)
    from repro.workloads.hibench import HIBENCH_AGGREGATE, hibench_ddl
    run_script("local", hdfs2, metastore2, hibench_ddl())
    out["aggregate_kv_hist"] = histogram_for(hdfs2, metastore2, HIBENCH_AGGREGATE)

    hdfs3, metastore3 = fresh_tpch(20, lineitem_sample=8000)
    out["q3_kv_hist"] = histogram_for(hdfs3, metastore3, tpch_query(3, 20))
    return out


def _spread(values):
    if len(values) < 2:
        return 0.0
    return statistics.pstdev(values) / max(1e-9, statistics.mean(values))


def test_fig02_communication_pattern(benchmark):
    data = run_once(benchmark, _experiment)

    hive_windows = data["hive_windows"]
    tera_windows = data["terasort_windows"]
    hive_cv = _spread(hive_windows)
    tera_cv = _spread(tera_windows)
    emit(
        "Fig 2(a)/(b) per-map collect windows (start -> last collect):\n"
        f"  hive AGGREGATE: n={len(hive_windows)} "
        f"range=[{min(hive_windows):.1f}, {max(hive_windows):.1f}]s "
        f"variation={hive_cv:.3f}\n"
        f"  TeraSort      : n={len(tera_windows)} "
        f"range=[{min(tera_windows):.1f}, {max(tera_windows):.1f}]s "
        f"variation={tera_cv:.3f}\n"
        "  (paper: Hive's collect sequences irregular, TeraSort's centralized)"
    )
    assert hive_cv > tera_cv, "Hive map work must be more irregular than TeraSort's"

    agg_hist = data["aggregate_kv_hist"]
    q3_hist = data["q3_kv_hist"]

    def top_modes(histogram, k=3):
        return sorted(histogram.items(), key=lambda kv: -kv[1])[:k]

    agg_modes = top_modes(agg_hist)
    q3_modes = top_modes(q3_hist)
    emit(
        "Fig 2(c)/(d) KV pair sizes:\n"
        f"  AGGREGATE modes: {agg_modes} (paper: centralized ~32B)\n"
        f"  TPC-H Q3 modes : {q3_modes} (paper: bimodal ~14B and ~32B)"
    )
    write_csv(results_path("fig02_kv_sizes.csv"), ["workload", "size_bytes", "count"],
              [["aggregate", s, c] for s, c in sorted(agg_hist.items())]
              + [["tpch_q3", s, c] for s, c in sorted(q3_hist.items())])

    # shape assertions
    top_share_agg = agg_modes[0][1] / sum(agg_hist.values())
    assert top_share_agg > 0.5, "AGGREGATE pair sizes should be centralized"
    distinct_q3 = {size for size, _ in top_modes(q3_hist, 2)}
    assert len(distinct_q3) >= 2, "Q3 should show multiple size modes"
