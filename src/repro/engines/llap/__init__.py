"""LLAP-style persistent-daemon engine (see :mod:`repro.engines.llap.engine`)."""

from repro.engines.llap.cache import CacheEntry, StripeCache
from repro.engines.llap.engine import LlapCosts, LlapEngine

__all__ = ["CacheEntry", "LlapCosts", "LlapEngine", "StripeCache"]
