"""Edge-case coverage: categorized bandwidth, partition-prune helper,
union plan shape, logical explain."""

import pytest

from repro.engines.base import _partition_pruned
from repro.plan.logical import explain_logical
from repro.simulate import Bandwidth, Simulator


class TestCategorizedBandwidth:
    def test_read_write_split(self):
        sim = Simulator()
        link = Bandwidth(sim, 100.0)

        def proc():
            yield link.transfer(300.0, category="read")
            yield link.transfer(100.0, category="write")

        sim.spawn(proc())
        sim.run()
        assert link.categorized["read"] == pytest.approx(300.0)
        assert link.categorized["write"] == pytest.approx(100.0)
        assert link.progressed_bytes() == pytest.approx(400.0)

    def test_uncategorized_not_tracked(self):
        sim = Simulator()
        link = Bandwidth(sim, 100.0)

        def proc():
            yield link.transfer(50.0)

        sim.spawn(proc())
        sim.run()
        assert link.categorized == {}


class _FakeSplit:
    def __init__(self, values):
        self.partition_values = values


class TestPartitionPruneHelper:
    def test_no_partition_values(self):
        assert not _partition_pruned(_FakeSplit(None), [("day", "=", "x")])

    def test_equality_mismatch_prunes(self):
        split = _FakeSplit({"day": "2015-01-01"})
        assert _partition_pruned(split, [("day", "=", "2015-01-02")])

    def test_equality_match_kept(self):
        split = _FakeSplit({"day": "2015-01-01"})
        assert not _partition_pruned(split, [("day", "=", "2015-01-01")])

    def test_range_ops(self):
        split = _FakeSplit({"hour": 5})
        assert _partition_pruned(split, [("hour", ">", 10)])
        assert not _partition_pruned(split, [("hour", "<=", 5)])

    def test_unrelated_column_ignored(self):
        split = _FakeSplit({"day": "x"})
        assert not _partition_pruned(split, [("other", "=", "y")])

    def test_type_mismatch_conservative(self):
        split = _FakeSplit({"day": "2015"})
        assert not _partition_pruned(split, [("day", ">", 10)])


class TestPlanShapesMisc:
    def test_union_plan_merges_inputs(self, warehouse):
        from repro.common.config import Configuration
        from repro.plan.analyzer import Analyzer
        from repro.plan.optimizer import prune_columns
        from repro.plan.physical import PhysicalCompiler
        from repro.sql import parse_statement

        hdfs, metastore = warehouse
        node = Analyzer(metastore).analyze(parse_statement(
            "SELECT name FROM emp UNION ALL SELECT dept FROM dept"
        ))
        plan = PhysicalCompiler(metastore, hdfs, Configuration(), "u").compile(
            prune_columns(node), "/tmp/u", "text"
        )
        assert plan.num_jobs == 1
        locations = {i.location for i in plan.jobs[0].inputs}
        assert locations == {"/warehouse/emp", "/warehouse/dept"}

    def test_explain_logical_tree(self, warehouse):
        from repro.plan.analyzer import Analyzer
        from repro.sql import parse_statement

        _hdfs, metastore = warehouse
        node = Analyzer(metastore).analyze(parse_statement(
            "SELECT dept, count(*) FROM emp GROUP BY dept ORDER BY dept"
        ))
        text = explain_logical(node)
        assert "Aggregate" in text and "Scan" in text and "Sort" in text
