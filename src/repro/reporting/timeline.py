"""ASCII task-timeline renderer (terminal Gantt charts).

Renders the :class:`~repro.engines.base.TaskTiming` records of a job as
one bar per task — the textual equivalent of the paper's per-task
time-sequence plots (Figs 2(a), 6).  Send events can be overlaid as
markers on top of the bars.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.engines.base import JobTiming, TaskTiming

BAR = "="
MARKER = "*"
IDLE = "."


def render_task_timeline(
    tasks: Sequence[TaskTiming],
    width: int = 72,
    show_sends: bool = False,
    max_tasks: int = 40,
) -> str:
    """One line per task: ``[task] |..====*==*===....|``.

    * ``=`` task running, ``.`` not running, ``*`` a send event
      (``show_sends``).
    * Time axis spans min(start) .. max(end) across the given tasks.
    """
    tasks = [task for task in tasks if task.finished > task.started]
    if not tasks:
        return "(no tasks)"
    tasks = sorted(tasks, key=lambda t: (t.started, t.task_id))[:max_tasks]
    t0 = min(task.started for task in tasks)
    t1 = max(task.finished for task in tasks)
    span = max(1e-9, t1 - t0)

    def col(when: float) -> int:
        return min(width - 1, max(0, int((when - t0) / span * width)))

    label_width = max(len(task.task_id) for task in tasks) + 1
    lines = [
        f"{'task':<{label_width}} {t0:8.1f}s{' ' * (width - 16)}{t1:8.1f}s"
    ]
    for task in tasks:
        cells = [IDLE] * width
        for position in range(col(task.started), col(task.finished) + 1):
            cells[position] = BAR
        if show_sends:
            for when in task.send_events:
                cells[col(when)] = MARKER
        lines.append(f"{task.task_id:<{label_width}} |{''.join(cells)}|")
    return "\n".join(lines)


def render_job_gantt(job: JobTiming, width: int = 72, kinds: Optional[set] = None) -> str:
    """Timeline of one job's tasks, optionally filtered by task kind."""
    tasks = job.tasks
    if kinds:
        tasks = [task for task in tasks if task.kind in kinds]
    header = (
        f"== {job.job_id}: {job.num_maps} map/O, {job.num_reducers} reduce/A, "
        f"{job.total:.1f}s (startup {job.startup:.1f} | MS {job.map_shuffle:.1f} "
        f"| others {job.others:.1f}) =="
    )
    return header + "\n" + render_task_timeline(tasks, width=width)


def phase_ruler(job: JobTiming, width: int = 72) -> str:
    """A one-line ruler marking the startup/MS/others phase boundaries."""
    span = max(1e-9, job.total)

    def col(when: float) -> int:
        return min(width - 1, max(0, int((when - job.submitted) / span * width)))

    cells = ["-"] * width
    cells[col(job.first_task_started)] = "S"  # first task invoked
    cells[col(job.shuffle_done)] = "M"  # shuffle data resident
    cells[-1] = "E"
    return "|" + "".join(cells) + "|  S=first task  M=shuffle done  E=end"
