"""Format-neutral interfaces for stored tables.

A :class:`StoredFile` owns the rows of one HDFS file plus everything the
cost model needs: the *encoded* byte size (computed by really encoding the
rows) and, for columnar formats, per-stripe/per-column sub-sizes so that
column pruning and predicate pushdown translate into fewer bytes read.

``ScanResult`` is what a table-scan operator gets back: the surviving rows
(possibly a superset that still needs residual filtering) and the number of
encoded bytes a real reader would have pulled off the disk for them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import StorageError
from repro.common.rows import ColumnBatch, Schema, pack_column

Row = Tuple[object, ...]
Predicate = Callable[[Row], bool]

#: Conjunctive comparison usable against stripe min/max statistics:
#: (column_name, op, literal) with op in {'=', '<', '<=', '>', '>=' }.
StatsConjunct = Tuple[str, str, object]


@dataclass
class ScanResult:
    """Rows surviving a (possibly pushed-down) scan plus bytes charged."""

    rows: List[Row]
    bytes_read: int
    rows_skipped: int = 0  # rows eliminated before deserialization (ORC)


@dataclass
class BatchScanResult:
    """Columnar twin of :class:`ScanResult`: the same surviving rows as a
    dense :class:`~repro.common.rows.ColumnBatch`, with the identical
    byte charge — the representation changes, the cost model does not."""

    batch: ColumnBatch
    bytes_read: int
    rows_skipped: int = 0


class StoredFile(abc.ABC):
    """Encoded representation of a row block inside one HDFS file."""

    def __init__(self, schema: Schema, rows: List[Row]):
        self.schema = schema
        self.rows = rows

    @property
    @abc.abstractmethod
    def total_bytes(self) -> int:
        """Encoded size of the whole file in bytes (un-scaled)."""

    @property
    def row_count(self) -> int:
        return len(self.rows)

    @abc.abstractmethod
    def scan(
        self,
        row_start: int,
        row_count: int,
        columns: Optional[Sequence[str]] = None,
        stats_conjuncts: Optional[Sequence[StatsConjunct]] = None,
    ) -> ScanResult:
        """Read a row range.

        *columns* lists the columns the query needs (None = all); columnar
        formats charge only those streams.  *stats_conjuncts* allow
        stripe-level elimination via min/max statistics.  Returned rows are
        always **full-width** (the engine's residual filter/project runs on
        top) — pruning affects only the byte charge and skipped stripes.
        """

    def scan_batch(
        self,
        row_start: int,
        row_count: int,
        columns: Optional[Sequence[str]] = None,
        stats_conjuncts: Optional[Sequence[StatsConjunct]] = None,
    ) -> BatchScanResult:
        """Columnar scan: same contract as :meth:`scan` but the result is
        a full-width :class:`~repro.common.rows.ColumnBatch`.

        Row-oriented formats (Text/Sequence) get this rows→batch adapter
        for free; columnar formats override it to serve decoded column
        streams directly, with no intermediate row tuples.  Byte charges
        and stripe skipping are identical to :meth:`scan` by construction.
        """
        result = self.scan(
            row_start, row_count, columns=columns,
            stats_conjuncts=stats_conjuncts,
        )
        return BatchScanResult(
            batch=ColumnBatch.from_rows(result.rows, width=len(self.schema)),
            bytes_read=result.bytes_read,
            rows_skipped=result.rows_skipped,
        )

    @abc.abstractmethod
    def bytes_for_range(self, row_start: int, row_count: int) -> int:
        """Encoded bytes covering a row range (used to size input splits)."""


def contiguous_scan_batch(
    stored: StoredFile, row_start: int, row_count: int
) -> BatchScanResult:
    """``scan_batch`` for row-major formats whose :meth:`StoredFile.scan`
    returns the plain contiguous row range (Text, Sequence: no pruning,
    no pushdown).  The file's rows are transposed once, cached in the
    typed-buffer layout (:func:`~repro.common.rows.pack_column`), and
    every scan serves column slices — slicing a typed ``array`` yields a
    typed ``array``, so batches stay cheap to pickle across the process
    pool.  Byte charges are unchanged."""
    row_end = min(row_start + row_count, stored.row_count)
    start = min(row_start, stored.row_count)
    columns = getattr(stored, "_columns_cache", None)
    if columns is None:
        if stored.rows:
            columns = [pack_column(column) for column in zip(*stored.rows)]
        else:
            columns = [[] for _ in range(len(stored.schema))]
        stored._columns_cache = columns
    return BatchScanResult(
        batch=ColumnBatch(
            [column[start:row_end] for column in columns], row_end - start
        ),
        bytes_read=stored.bytes_for_range(row_start, row_count),
    )


class FileFormat(abc.ABC):
    """Factory turning rows into a :class:`StoredFile`."""

    name: str = "abstract"

    @abc.abstractmethod
    def build(self, schema: Schema, rows: List[Row]) -> StoredFile:
        """Encode *rows* and return the stored representation."""


_REGISTRY: Dict[str, FileFormat] = {}


def register_format(fmt: FileFormat) -> None:
    _REGISTRY[fmt.name] = fmt


def get_format(name: str) -> FileFormat:
    """Look up a registered format by name ('text', 'sequence', 'orc')."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise StorageError(f"unknown file format {name!r} (known: {known})") from None


def evaluate_stats_conjunct(
    conjunct: StatsConjunct, minimum: object, maximum: object
) -> bool:
    """Can any row in [minimum, maximum] satisfy the conjunct?

    Conservative: returns True (cannot skip) when stats are missing or
    types are not comparable.
    """
    _column, op, literal = conjunct
    if minimum is None or maximum is None or literal is None:
        return True
    try:
        if op == "=":
            return minimum <= literal <= maximum
        if op == "<":
            return minimum < literal
        if op == "<=":
            return minimum <= literal
        if op == ">":
            return maximum > literal
        if op == ">=":
            return maximum >= literal
    except TypeError:
        return True
    return True
