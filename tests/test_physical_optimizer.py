"""Tests for the physical compiler and the column pruner."""

import pytest

from repro.common.config import Configuration
from repro.common.units import MB
from repro.exec.operators import (
    FileSinkDesc,
    FilterDesc,
    MapGroupByDesc,
    MapJoinDesc,
    ReduceSinkDesc,
    SelectDesc,
)
from repro.exec.reduce import (
    ReduceAggregateDesc,
    ReduceDistinctDesc,
    ReduceJoinDesc,
    ReduceSortDesc,
)
from repro.plan.analyzer import Analyzer
from repro.plan.optimizer import prune_columns
from repro.plan.physical import PhysicalCompiler, explain_plan
from repro.sql import parse_statement


@pytest.fixture()
def compile_sql(warehouse):
    hdfs, metastore = warehouse
    analyzer = Analyzer(metastore)

    def _compile(sql, prune=True, conf=None):
        node = analyzer.analyze(parse_statement(sql))
        if prune:
            node = prune_columns(node)
        compiler = PhysicalCompiler(metastore, hdfs, conf or Configuration(), "t")
        return compiler.compile(node, "/tmp/out", "text")

    return _compile


class TestPlanShapes:
    def test_map_only_job(self, compile_sql):
        plan = compile_sql("SELECT name FROM emp WHERE salary > 90")
        assert plan.num_jobs == 1
        job = plan.jobs[0]
        assert job.is_map_only
        assert isinstance(job.inputs[0].operators[-1], FileSinkDesc)

    def test_groupby_one_job(self, compile_sql):
        plan = compile_sql("SELECT dept, sum(salary) FROM emp GROUP BY dept")
        assert plan.num_jobs == 1
        job = plan.jobs[0]
        assert isinstance(job.reduce_logic, ReduceAggregateDesc)
        ops = [type(d).__name__ for d in job.inputs[0].operators]
        assert "MapGroupByDesc" in ops and ops[-1] == "ReduceSinkDesc"

    def test_groupby_orderby_two_jobs(self, compile_sql):
        plan = compile_sql(
            "SELECT dept, sum(salary) s FROM emp GROUP BY dept ORDER BY s"
        )
        assert plan.num_jobs == 2
        assert isinstance(plan.jobs[1].reduce_logic, ReduceSortDesc)
        assert plan.jobs[1].num_reducers_hint == 1
        assert plan.jobs[1].sort_directions == [True]

    def test_distinct_job(self, compile_sql):
        plan = compile_sql("SELECT DISTINCT dept FROM emp")
        assert isinstance(plan.jobs[0].reduce_logic, ReduceDistinctDesc)

    def test_count_distinct_disables_map_agg(self, compile_sql):
        plan = compile_sql("SELECT dept, count(DISTINCT name) FROM emp GROUP BY dept")
        ops = [type(d).__name__ for d in plan.jobs[0].inputs[0].operators]
        assert "MapGroupByDesc" not in ops
        logic = plan.jobs[0].reduce_logic
        assert logic.inputs_are_partials is False

    def test_global_aggregate_single_reducer(self, compile_sql):
        plan = compile_sql("SELECT sum(salary) FROM emp")
        assert plan.jobs[0].num_reducers_hint == 1

    def test_final_limit_recorded(self, compile_sql):
        plan = compile_sql("SELECT name FROM emp ORDER BY name LIMIT 3")
        assert plan.final_limit == 3

    def test_explain_runs(self, compile_sql):
        plan = compile_sql("SELECT dept, count(*) FROM emp GROUP BY dept")
        text = explain_plan(plan)
        assert "job" in text and "ReduceSink" in text


class TestJoinPlanning:
    def test_small_table_becomes_map_join(self, compile_sql):
        # dept has scale 100 -> tiny -> broadcast
        plan = compile_sql(
            "SELECT name, budget FROM emp e JOIN dept d ON e.dept = d.dept"
        )
        assert plan.num_jobs == 1
        job = plan.jobs[0]
        assert job.is_map_only
        assert job.broadcasts and job.broadcasts[0].location == "/warehouse/dept"
        assert any(isinstance(d, MapJoinDesc) for d in job.inputs[0].operators)

    def test_swapped_map_join_small_left(self, compile_sql):
        plan = compile_sql(
            "SELECT name, budget FROM dept d JOIN emp e ON d.dept = e.dept"
        )
        job = plan.jobs[0]
        descs = [d for d in job.inputs[0].operators if isinstance(d, MapJoinDesc)]
        assert descs and descs[0].swap_output

    def test_common_join_when_both_big(self, compile_sql, warehouse):
        hdfs, metastore = warehouse
        conf = Configuration({"hive.mapjoin.smalltable.filesize": "1"})
        plan = compile_sql(
            "SELECT name, budget FROM emp e JOIN dept d ON e.dept = d.dept",
            conf=conf,
        )
        job = plan.jobs[0]
        assert isinstance(job.reduce_logic, ReduceJoinDesc)
        tags = sorted(map_input.tag for map_input in job.inputs)
        assert tags == [0, 1]

    def test_left_join_small_left_not_broadcast(self, compile_sql):
        # LEFT JOIN with the small table on the preserved (left) side
        # cannot be swapped into a broadcast join
        plan = compile_sql(
            "SELECT budget FROM dept d LEFT JOIN emp e ON d.dept = e.dept"
        )
        job = plan.jobs[0]
        assert isinstance(job.reduce_logic, ReduceJoinDesc)
        assert job.reduce_logic.join_type == "left"

    def test_cross_join_single_reducer(self, compile_sql, warehouse):
        conf = Configuration({"hive.mapjoin.smalltable.filesize": "1"})
        plan = compile_sql("SELECT name FROM emp CROSS JOIN dept", conf=conf)
        assert plan.jobs[0].num_reducers_hint == 1

    def test_cross_join_with_tiny_table_broadcasts(self, compile_sql):
        plan = compile_sql("SELECT name FROM emp CROSS JOIN dept")
        assert plan.jobs[0].is_map_only  # broadcast even without keys

    def test_join_then_group_two_jobs(self, compile_sql):
        conf = Configuration({"hive.mapjoin.smalltable.filesize": "1"})
        plan = compile_sql(
            "SELECT region, sum(salary) FROM emp e JOIN dept d ON e.dept = d.dept "
            "GROUP BY region",
            conf=conf,
        )
        assert plan.num_jobs == 2
        assert isinstance(plan.jobs[0].reduce_logic, ReduceJoinDesc)
        assert isinstance(plan.jobs[1].reduce_logic, ReduceAggregateDesc)


class TestScanHints:
    def test_column_pruning_hints(self, compile_sql):
        plan = compile_sql("SELECT name FROM emp WHERE salary > 90")
        hints = plan.jobs[0].inputs[0].hints
        assert hints.columns == ["name", "salary"]

    def test_stats_conjuncts_extracted(self, compile_sql):
        plan = compile_sql("SELECT name FROM emp WHERE salary > 90 AND hired >= '2001-01-01'")
        hints = plan.jobs[0].inputs[0].hints
        assert ("salary", ">", 90) in hints.stats_conjuncts
        assert ("hired", ">=", "2001-01-01") in hints.stats_conjuncts

    def test_flipped_literal_comparison(self, compile_sql):
        plan = compile_sql("SELECT name FROM emp WHERE 90 < salary")
        hints = plan.jobs[0].inputs[0].hints
        assert ("salary", ">", 90) in hints.stats_conjuncts

    def test_group_by_hints(self, compile_sql):
        plan = compile_sql("SELECT dept, sum(salary) FROM emp GROUP BY dept")
        hints = plan.jobs[0].inputs[0].hints
        assert hints.columns == ["dept", "salary"]


class TestColumnPruner:
    def analyze(self, warehouse, sql):
        _hdfs, metastore = warehouse
        return Analyzer(metastore).analyze(parse_statement(sql))

    def test_join_output_narrowed(self, warehouse):
        node = self.analyze(
            warehouse,
            "SELECT region, sum(salary) FROM emp e JOIN dept d ON e.dept = d.dept "
            "GROUP BY region",
        )
        before = len(node.child.child.signature)  # join output width
        pruned = prune_columns(node)
        after = len(pruned.child.child.signature)
        assert after < before
        assert after == 4  # dept key + salary | dept key + region

    def test_pruned_plan_same_result(self, warehouse, local_session):
        sql = (
            "SELECT region, sum(salary) total FROM emp e JOIN dept d "
            "ON e.dept = d.dept GROUP BY region ORDER BY total DESC"
        )
        result = local_session.query(sql)
        assert result.rows == [("west", 220.0), ("east", 185.0)]

    def test_prune_keeps_filter_columns(self, warehouse):
        node = self.analyze(
            warehouse, "SELECT name FROM emp WHERE salary > 90 AND dept = 'eng'"
        )
        pruned = prune_columns(node)
        # result still projects only `name`
        assert len(pruned.signature) == 1

    def test_prune_count_star(self, warehouse):
        node = self.analyze(warehouse, "SELECT count(*) FROM emp")
        pruned = prune_columns(node)  # must not crash on zero column refs
        assert len(pruned.signature) == 1
