"""The DataMPI execution engine (paper §IV).

Differences from the Hadoop engine, each mapped to a paper claim:

* **Light-weight startup** — one ``mpidrun`` spawn brings up
  CommonProcesses on every node; scheduled O/A tasks dispatch into the
  *existing* processes (no per-task JVM), so startup is ~30 % shorter
  and multi-wave jobs avoid per-wave process costs (§V-B).
* **Overlapped, partition-based shuffle** — the DataMPICollector fills
  Send Partition List buffers *while the O task computes*; full buffers
  flow through a bounded send queue to the shuffle engine, which
  transmits them with non-blocking ``MPI_Isend`` and caches the request
  handles (Fig 7).  By the time all O tasks finish, the intermediate
  data already sits in A-side memory (§IV-B "overlapped computation and
  communication").
* **Blocking vs non-blocking styles** — the blocking style synchronizes
  every participant per communication round (``MPI_Waitall``); skewed
  tasks then stall the whole communicator (Fig 6).
* **Gang fault semantics** — the MPI substrate has no per-task retry: a
  rank failure (injected task fault or node crash) poisons the whole
  communicator, every surviving rank is interrupted mid-flight and the
  attempt's partial output is discarded.  ``mpidrun`` resubmits the job
  under exponential backoff (``repro.retry.max`` / ``repro.retry.backoff``);
  when resubmissions run out a :class:`RetryExhaustedError` surfaces so
  the session can degrade to the MapReduce engine (§I, §VI — the
  fault-tolerance trade-off the paper concedes to Hadoop).
* **Tuning knobs** — ``hive.datampi.memusedpercent`` splits the heap
  between DataMPI's buffers and the application (low → A-side spill,
  high → GC pressure: Fig 8 left); ``hive.datampi.sendqueue`` bounds the
  send queue (small → computation blocks on communication: Fig 8
  right); ``hive.datampi.parallelism=enhanced`` sets #A = #O (§IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Dict, Iterator, List, Optional, Set

from repro.common.config import (
    Configuration,
    DATAMPI_NONBLOCKING,
    DATAMPI_OVERLAP,
    EXEC_VECTORIZED,
    HIVE_DATAMPI_DAG,
    HIVE_DATAMPI_MEM_USED_PERCENT,
    HIVE_DATAMPI_SEND_QUEUE,
    RETRY_BACKOFF,
    RETRY_MAX,
)
from repro.common.errors import JobAbortedError, RetryExhaustedError
from repro.common.kv import KeyValue
from repro.common.units import MB
from repro.engines.base import (
    Engine,
    EngineCapabilities,
    EngineRuntime,
    JobTiming,
    PlanResult,
    TaggedSplit,
    TaskTiming,
    assign_splits_locality,
    close_job_span,
    close_task_span,
    collect_plan_result,
    hdfs_write_pipeline,
    decide_num_reducers,
    expand_job_splits,
    job_input_scale,
    load_broadcast_tables,
    open_job_span,
    open_task_span,
    pick_read_source,
    record_job_metrics,
    run_reducer_functionally,
    scan_split,
    write_task_output,
)
from repro.engines.datampi.buffers import (
    ReceiveManager,
    SendBuffer,
    SendPartitionList,
    SendQueue,
)
from repro.engines.datampi.mpi import DynamicBarrier, SimulatedMPI
from repro.exec.operators import Collector
from repro.obs import Tracer, get_metrics
from repro.parallel import pool_from_conf, resolve_compute, spec_for_split
from repro.plan.physical import MRJob, PhysicalPlan
from repro.simulate import (
    Cluster,
    ClusterSpec,
    FaultInjector,
    GangLease,
    Interrupt,
    LeaseManager,
    LeaseOwner,
    Simulator,
    SlotPool,
)
from repro.storage.hdfs import HDFS


DEFAULT_RETRY_MAX = 2  # resubmissions after the first failed run
DEFAULT_RETRY_BACKOFF = 1.0  # seconds; doubles per resubmission


@dataclass
class DataMPICosts:
    """Calibrated latencies/rates for the DataMPI engine."""

    mpidrun_spawn: float = 1.2  # mpidrun + hostfile + plan/conf staging
    process_launch: float = 1.6  # CommonProcess bring-up across the nodes
    task_setup: float = 0.35  # dispatch a scheduled task into a live process
    job_cleanup: float = 0.5
    cpu_map_ms_per_mb: float = 35.0  # identical functional work to Hadoop
    cpu_reduce_ms_per_mb: float = 14.0
    cpu_sort_ms_per_mb: float = 7.0  # per merge pass
    cpu_orc_decode_ms_per_mb: float = 14.0
    batch_target_mb: float = 8.0
    min_batch_rows: int = 200
    partition_buffer_bytes: float = 512 * 1024  # SPL send-partition size (logical)
    gc_coefficient: float = 0.55  # GC-pressure shaping (Fig 8 left)
    default_mem_used_percent: float = 0.4
    default_send_queue: int = 6
    send_setup_seconds: float = 0.004  # per-message request setup in the engine
    blocking_round_buffers: int = 10  # sends per synchronized round (blocking style)


class DataMPICollector(Collector):
    """Replaces Hadoop's MapOutputCollector: pairs go straight into the
    Send Partition Lists; full partitions are handed to the shuffle
    engine between row batches (paper §IV-B: DataMPICollector.collect()
    uses MPI_D_send())."""

    def __init__(self, spl: SendPartitionList):
        self.spl = spl
        self.full_buffers: List[SendBuffer] = []
        # prebound: collect() runs once per shuffle pair
        self._add = spl.add
        self._on_full = self.full_buffers.append

    def collect(self, partition: int, pair: KeyValue) -> None:
        filled = self._add(partition, pair)
        if filled is not None:
            self._on_full(filled)

    def collect_batch(self, partitions, pairs) -> None:
        self.spl.add_many(partitions, pairs, self._on_full)

    def take_full(self) -> List[SendBuffer]:
        # clear in place: collect() holds a bound append to this list
        out = self.full_buffers[:]
        self.full_buffers.clear()
        return out


class _Gang:
    """One mpidrun submission's communicator: every task process in the
    job, the HDFS paths it has written, and the poison flag.

    The first interrupted/doomed rank ``trip``\\ s the gang: all other
    ranks get interrupted at the same instant (MPI_Abort semantics) and
    the attempt's outputs are deleted by the retry loop.  A node crash
    anywhere in the cluster trips the gang too — the MPI world spans all
    workers, so losing any host kills the communicator.
    """

    def __init__(self, sim: Simulator, injector: FaultInjector):
        self.sim = sim
        self.injector = injector
        self.tripped = False
        self.cause: object = None
        self.procs: List = []
        self.written: List[str] = []
        #: worker indices in the current submission's hostfile — set by
        #: ``_attempt_job`` once the communicator's membership is fixed
        self.attempt_indices: Set[int] = set()
        injector.subscribe_crash(self._on_crash)

    def _on_crash(self, worker_index: int) -> None:
        # With a heartbeat monitor running this fires at the *declared*
        # death, seconds after the physical crash — by then a resubmission
        # may already have excluded the node from its hostfile, and a
        # declaration must not poison a communicator the node never
        # joined.  Ranks on the dead node are interrupted physically at
        # the crash instant and trip the gang themselves.
        if self.attempt_indices and worker_index not in self.attempt_indices:
            return
        self.trip(("node-crash", worker_index))

    def add(self, proc) -> None:
        if self.tripped:
            if proc.alive:
                proc.interrupt(("gang-abort", self.cause))
            return
        self.procs.append(proc)

    def trip(self, cause: object) -> None:
        if self.tripped:
            return
        self.tripped = True
        self.cause = cause
        for proc in self.procs:
            if proc.alive:
                proc.interrupt(("gang-abort", cause))

    def close(self) -> None:
        self.injector.unsubscribe_crash(self._on_crash)


class DataMPIEngine(Engine):
    name = "datampi"
    capabilities = EngineCapabilities(
        vectorized=True, gang_scheduling=True, shared_runtime=True
    )

    def __init__(
        self,
        hdfs: HDFS,
        spec: Optional[ClusterSpec] = None,
        costs: Optional[DataMPICosts] = None,
    ):
        self.hdfs = hdfs
        self.spec = spec or ClusterSpec()
        self.costs = costs or DataMPICosts()

    # -- public API ---------------------------------------------------------
    def run_plan(
        self,
        plan: PhysicalPlan,
        conf: Optional[Configuration] = None,
        with_metrics: bool = False,
        tracer: Optional[Tracer] = None,
    ) -> PlanResult:
        conf = conf or Configuration()
        runtime = EngineRuntime(
            self.spec, conf, with_metrics=with_metrics, tracer=tracer
        )
        timings: List[JobTiming] = []

        def driver():
            collected = yield from self.plan_process(runtime, plan, conf)
            timings.extend(collected)

        runtime.sim.spawn(driver(), "hive-driver")
        try:
            runtime.sim.run()
        finally:
            runtime.close()
        return collect_plan_result(self, runtime, plan, timings)

    def plan_process(
        self,
        runtime: EngineRuntime,
        plan: PhysicalPlan,
        conf: Optional[Configuration] = None,
        owner: Optional[LeaseOwner] = None,
    ):
        """Execute *plan* inside a (possibly shared) runtime.  The MPI
        substrate is per-plan (it only counts messages); the A-task slot
        pools are runtime-shared so concurrent queries contend for them."""
        conf = conf or Configuration()
        sim = runtime.sim
        mpi = SimulatedMPI(runtime.cluster)
        a_slots = runtime.aux_slots(
            "datampi.a", runtime.spec.slots_per_node, "aslots"
        )

        # DAG mode (paper §VII future work 3): consecutive stages whose only
        # dependency is the previous stage's temp directory are pipelined —
        # no HDFS materialization, no re-spawned processes
        dag = conf.get_bool(HIVE_DATAMPI_DAG, False)
        pipelined_in = set()
        if dag:
            for index in range(1, len(plan.jobs)):
                job = plan.jobs[index]
                previous = plan.jobs[index - 1]
                if (
                    len(job.inputs) == 1
                    and job.inputs[0].location == previous.output_location
                    and not previous.is_final
                ):
                    pipelined_in.add(index)

        timings: List[JobTiming] = []
        for index, job in enumerate(plan.jobs):
            is_last = index == len(plan.jobs) - 1
            timing = yield from self._run_job(
                sim, runtime.cluster, mpi, a_slots, job, conf, is_last,
                runtime.tracer, runtime.injector, runtime.leases, owner,
                pipe_in=index in pipelined_in,
                pipe_out=(index + 1) in pipelined_in,
            )
            timings.append(timing)
        return timings

    # -- knobs ------------------------------------------------------------------
    def _mem_used_percent(self, conf: Configuration) -> float:
        value = conf.get_float(
            HIVE_DATAMPI_MEM_USED_PERCENT, self.costs.default_mem_used_percent
        )
        return min(0.98, max(0.02, value))

    def _gc_factor(self, mem_used_percent: float) -> float:
        """CPU inflation from Java GC when the application is squeezed
        (percent -> 1 leaves little heap for row processing: Fig 8)."""
        pressure = mem_used_percent * mem_used_percent / (1.0 - mem_used_percent + 0.05)
        return min(2.5, 1.0 + self.costs.gc_coefficient * pressure)

    def _partition_buffer_bytes(self, mem_used_percent: float) -> float:
        """SPL send-partition size: the library's buffer pool grows with
        its heap share; a starved pool means tiny partitions and many
        more, higher-overhead sends (the left edge of Fig 8)."""
        scaled = self.costs.partition_buffer_bytes * (
            mem_used_percent / self.costs.default_mem_used_percent
        )
        return min(2.0 * 1024 * 1024, max(64.0 * 1024, scaled))

    # -- job retry loop ----------------------------------------------------------
    def _run_job(self, sim: Simulator, cluster: Cluster, mpi: SimulatedMPI,
                 a_slots: List[SlotPool], job: MRJob, conf: Configuration,
                 is_last: bool, tracer: Tracer, injector: FaultInjector,
                 leases: LeaseManager, owner: Optional[LeaseOwner],
                 pipe_in: bool = False, pipe_out: bool = False):
        """Submit the job; on a gang abort discard the attempt's output
        and resubmit under exponential backoff until ``repro.retry.max``
        resubmissions are spent."""
        retry_max = max(0, conf.get_int(RETRY_MAX, DEFAULT_RETRY_MAX))
        backoff = max(0.0, conf.get_float(RETRY_BACKOFF, DEFAULT_RETRY_BACKOFF))
        timing = JobTiming(
            job_id=job.job_id,
            submitted=sim.now,
            num_maps=0,
            num_reducers=0,
        )
        timing.span = open_job_span(tracer, self.name, job, sim.now, owner)
        submission = 0
        while True:
            submission += 1
            gang = _Gang(sim, injector)
            try:
                yield from self._attempt_job(
                    sim, cluster, mpi, a_slots, job, conf, is_last, timing,
                    injector, gang, submission, retry_max, leases, owner,
                    pipe_in=pipe_in and submission == 1, pipe_out=pipe_out,
                )
                break
            except JobAbortedError as abort:
                timing.restarts += 1
                get_metrics().counter("engine.job.restarts").add(1)
                get_metrics().counter("datampi.job.restarts").add(1)
                if timing.span is not None:
                    timing.span.add_event("gang-abort", sim.now,
                                          cause=str(abort.cause),
                                          submission=submission)
                # MPI_Abort discards everything: even committed part-files
                # of this attempt are deleted before the re-run
                for path in gang.written:
                    self.hdfs.delete(path)
                if submission > retry_max:
                    timing.finished = sim.now
                    close_job_span(timing)
                    raise RetryExhaustedError(
                        f"job {job.job_id} aborted on all {submission} "
                        f"submission(s); last cause: {abort.cause}",
                        job_id=job.job_id,
                        attempts=submission,
                    )
                delay = backoff * (2 ** (submission - 1))
                if timing.span is not None:
                    timing.span.add_event("backoff", sim.now, seconds=delay)
                if delay > 0:
                    yield sim.timeout(delay)
            finally:
                gang.close()
        timing.finished = sim.now
        close_job_span(timing)
        record_job_metrics(self.name, timing, self.spec.total_slots)
        return timing

    # -- one submission ----------------------------------------------------------
    def _attempt_job(self, sim: Simulator, cluster: Cluster, mpi: SimulatedMPI,
                     a_slots: List[SlotPool], job: MRJob, conf: Configuration,
                     is_last: bool, timing: JobTiming, injector: FaultInjector,
                     gang: _Gang, submission: int, retry_max: int,
                     leases: LeaseManager, owner: Optional[LeaseOwner],
                     pipe_in: bool = False, pipe_out: bool = False):
        costs = self.costs
        hdfs = self.hdfs
        splits = expand_job_splits(job, hdfs)
        small_tables = load_broadcast_tables(job, hdfs)
        scale = job_input_scale(job, hdfs)
        total_bytes = sum(s.logical_bytes for s in splits)
        mem_used = self._mem_used_percent(conf)
        gc_factor = self._gc_factor(mem_used)
        queue_capacity = conf.get_int(HIVE_DATAMPI_SEND_QUEUE, costs.default_send_queue)
        nonblocking = conf.get_bool(DATAMPI_NONBLOCKING, True)
        overlap = conf.get_bool(DATAMPI_OVERLAP, True)
        vectorized = conf.get_bool(EXEC_VECTORIZED, True)
        pool = pool_from_conf(conf)
        # the final permitted submission runs with injected task faults
        # disabled, so only repeated node crashes can exhaust the retries
        doom_ok = submission <= retry_max

        def check_abort():
            if gang.tripped:
                raise JobAbortedError(
                    f"gang abort: {gang.cause}", job_id=job.job_id,
                    cause=gang.cause,
                )

        # mpidrun spawns the CommonProcesses (once per submission); their
        # heaps appear on every node at once — this is why the paper's Fig
        # 13(c) shows DataMPI reaching its memory ceiling sooner than
        # Hadoop.  A pipelined DAG stage reuses the previous stage's live
        # processes (but a resubmission always respawns them).
        if not pipe_in:
            yield sim.timeout(costs.mpidrun_spawn)
            yield sim.timeout(costs.process_launch)
        # O and A communicators each get slots_per_node processes (the
        # testbed's 4 + 4), all resident from spawn time; dead hosts are
        # left out of the new communicator's hostfile.  Membership may
        # have changed while mpidrun was spawning, so re-snapshot the
        # worker list before building it.
        workers = cluster.workers
        live_indices = (
            injector.schedulable_worker_indices()  # skip draining hosts
            or injector.live_worker_indices()
            or list(range(len(workers)))
        )
        attempt_set = set(live_indices)
        gang.attempt_indices = attempt_set
        attempt_workers = [workers[i] for i in live_indices]
        process_heap = 2 * self.spec.heap_per_task * self.spec.slots_per_node
        for worker in attempt_workers:
            worker.memory.allocate(process_heap)

        def remap(node_index: int) -> int:
            if node_index in attempt_set:
                return node_index
            return live_indices[node_index % len(live_indices)]

        try:
            if not splits:
                data_file = write_task_output(job, hdfs, 0, [], scale)
                gang.written.append(data_file.path)
                if not timing.first_task_started:
                    timing.first_task_started = sim.now
                timing.shuffle_done = sim.now
                yield sim.timeout(costs.job_cleanup)
                check_abort()
                return

            # DataMPI schedules at most one O task per slot (paper §IV-D:
            # "the number of O tasks is based on the number of input splits
            # and less than the maximum number of executing slots"); each O
            # task consumes several splits, so there are no task waves.
            groups = _group_splits(splits, len(workers), self.spec.slots_per_node)
            groups = [(remap(node_index), group) for node_index, group in groups]
            num_o = len(groups)
            timing.num_maps = num_o
            num_reducers = decide_num_reducers(
                job, num_o, total_bytes, conf, is_last, self.spec.total_slots
            )
            timing.num_reducers = num_reducers
            partition_nodes = [
                workers[remap(p % len(workers))] for p in range(num_reducers)
            ]
            # the A-side processes' share of the heap caches received
            # partitions; beyond it, buffers spill to local disk (Fig 8 left)
            cache_budget = (
                mem_used * self.spec.heap_per_task * self.spec.slots_per_node
            )
            receive = ReceiveManager(sim, partition_nodes, cache_budget)
            barrier = DynamicBarrier(sim)
            pending_deliveries: List = []
            first_start_event = sim.event()

            # DataMPI's scheduler is gang-granular: the job's whole O-slot
            # set is leased atomically (all-or-nothing — a waiting gang
            # holds nothing, so it can never wedge another query).  After
            # a remap folds a dead node's groups onto survivors a node may
            # carry more O tasks than slots; the gang claims only up to
            # each pool's capacity and the overflow tasks wave through
            # individual leases like any other request.
            gang_counts: Dict[int, int] = {}
            for node_index, _group in groups:
                gang_counts[node_index] = gang_counts.get(node_index, 0) + 1
            gang_budget = {
                node_index: min(count, workers[node_index].slots.capacity)
                for node_index, count in gang_counts.items()
            }
            gang_grant = leases.acquire_gang(
                [
                    (workers[node_index].slots, gang_budget[node_index])
                    for node_index in sorted(gang_budget)
                ],
                owner,
            )
            ranks: List = []  # (worker_index, process) registered as MPI ranks

            try:
                yield gang_grant
                gang_lease: GangLease = gang_grant.value
                check_abort()  # the gang may have tripped while we waited
                o_processes = []
                gang_spawned: Dict[int, int] = {}
                for index, (node_index, group) in enumerate(groups):
                    if not nonblocking:
                        barrier.register()
                    doom = (
                        injector.attempt_doom(job.job_id, f"o{index}", submission)
                        if doom_ok else None
                    )
                    reserved = gang_spawned.get(node_index, 0)
                    task_gang = (
                        gang_lease if reserved < gang_budget[node_index] else None
                    )
                    gang_spawned[node_index] = reserved + 1
                    proc = sim.spawn(
                        self._o_task(
                            sim, cluster, mpi, job, timing, index, group,
                            node_index, small_tables, num_reducers,
                            receive, barrier, queue_capacity, nonblocking,
                            gc_factor, mem_used, first_start_event,
                            pending_deliveries, scale, gang, doom,
                            leases, owner, task_gang,
                            overlap, pipe_in, pipe_out, vectorized, pool,
                        ),
                        f"{job.job_id}-s{submission}-o{index}",
                    )
                    gang.add(proc)
                    if injector.active:
                        # physical failure semantics: a node crash
                        # interrupts the resident rank at the crash
                        # instant; the rank itself trips the gang
                        injector.register(node_index, proc)
                        ranks.append((node_index, proc))
                    o_processes.append(proc)

                yield sim.all_of(o_processes)
                if pending_deliveries and not gang.tripped:
                    yield sim.all_of(pending_deliveries)
                check_abort()
                timing.shuffle_done = sim.now  # O phase over: data on the A side
                if not timing.first_task_started:
                    timing.first_task_started = (
                        first_start_event.value if first_start_event.triggered
                        else sim.now
                    )
                timing.shuffle_logical_bytes = sum(receive.received_bytes)

                if not job.is_map_only:
                    a_processes = []
                    for partition in range(num_reducers):
                        doom = (
                            injector.attempt_doom(job.job_id, f"a{partition}",
                                                  submission)
                            if doom_ok else None
                        )
                        a_node = partition_nodes[partition].node_id - 1
                        proc = sim.spawn(
                            self._a_task(
                                sim, cluster, a_slots, job, timing, partition,
                                a_node,
                                small_tables, receive, gc_factor, scale,
                                gang, doom, leases, owner, pipe_out,
                            ),
                            f"{job.job_id}-s{submission}-a{partition}",
                        )
                        gang.add(proc)
                        if injector.active:
                            injector.register(a_node, proc)
                            ranks.append((a_node, proc))
                        a_processes.append(proc)
                    yield sim.all_of(a_processes)
                    check_abort()

                yield sim.timeout(costs.job_cleanup)
                check_abort()
            finally:
                for worker_index, proc in ranks:
                    injector.unregister(worker_index, proc)
                if gang_grant.triggered:
                    # O tasks interrupted before their first step never ran
                    # their ``finally`` — their reserved slots are still
                    # checked in here and must go back exactly once
                    gang_grant.value.release_unclaimed()
                else:
                    # interrupted (deadline) while the gang was still
                    # queued: withdraw the request so it cannot be granted
                    # to a dead waiter and wedge the pool
                    leases.cancel_gang(gang_grant, owner)
        finally:
            for worker in attempt_workers:
                worker.memory.free(process_heap)

    # -- O task ----------------------------------------------------------------------
    def _o_task(self, sim: Simulator, cluster: Cluster, mpi: SimulatedMPI,
                job: MRJob, timing: JobTiming, index: int,
                group: List[TaggedSplit], node_index: int, small_tables,
                num_reducers: int, receive: ReceiveManager,
                barrier: DynamicBarrier, queue_capacity: int, nonblocking: bool,
                gc_factor: float, mem_used: float, first_start_event,
                pending_deliveries: List, job_scale: float, gang: _Gang,
                doom: Optional[float], leases: LeaseManager,
                owner: Optional[LeaseOwner],
                gang_lease: Optional[GangLease], overlap: bool = True,
                pipe_in: bool = False, pipe_out: bool = False,
                vectorized: bool = False, pool=None):
        costs = self.costs
        node = cluster.workers[node_index]
        task = TaskTiming(task_id=f"o{index}", kind="o", node=node_index,
                          scheduled=sim.now)
        timing.tasks.append(task)
        open_task_span(timing, task)

        if gang_lease is not None:
            # slot was granted atomically with the rest of the gang before
            # this process was spawned; claim release duty from the lease
            gang_lease.checkout(node.slots)
            acquired = None
            held_slot = True
        else:
            # remap overflow beyond the node's slot capacity: wave through
            # like any other single-slot request
            acquired = leases.acquire(node.slots, owner)
            held_slot = False
        queue = SendQueue(sim, queue_capacity)
        sender_done = None
        sender_started = False
        emit_seq = count()  # provenance stamp for canonical receive order
        output_rows: List = []
        specs = []
        futures = []
        if doom is None:
            for tagged in group:
                specs.append(spec_for_split(
                    "datampi", tagged, num_partitions=num_reducers,
                    small_tables=small_tables, vectorized=vectorized,
                    map_only=job.is_map_only,
                    batch_target_mb=costs.batch_target_mb,
                    min_batch_rows=costs.min_batch_rows,
                    partition_capacity=(
                        self._partition_buffer_bytes(mem_used)
                        / max(tagged.split.scale, 1e-9)
                    ),
                ))
            if pool is not None:
                # submit the whole group before any simulated wait so the
                # workers compute while the DES plays out task setup
                futures = [pool.submit(spec) for spec in specs]
        try:
            if acquired is not None:
                yield acquired
                held_slot = True
            yield from node.compute(costs.task_setup)
            task.started = sim.now
            if not first_start_event.triggered:
                first_start_event.trigger(sim.now)

            if doom is not None:
                # injected rank failure: burn a doom-fraction of the first
                # split's work, then poison the communicator — there is no
                # task-granular recovery in the MPI substrate
                rows0, bytes0 = scan_split(group[0])
                partial = bytes0 * doom
                if not pipe_in:
                    yield from self._charge_split_read(
                        cluster, node, node_index, group[0], partial
                    )
                yield from node.compute(
                    partial / MB * costs.cpu_map_ms_per_mb * gc_factor / 1000.0
                )
                timing.failed_attempts += 1
                get_metrics().counter("cluster.tasks.failed").add(1)
                if task.span is not None:
                    task.span.add_event("injected-failure", sim.now,
                                        doom=doom, node=node_index)
                task.finished = sim.now
                close_task_span(task)
                gang.trip(("task-failure", task.task_id))
                return

            held: List[SendBuffer] = []  # overlap disabled: defer all sends
            for position, tagged in enumerate(group):
                scale = tagged.split.scale
                if nonblocking and not job.is_map_only and not sender_started:
                    sender_done = sim.spawn(
                        self._sender_thread(
                            sim, mpi, node, queue, receive, pending_deliveries,
                            task, gang,
                        ),
                        f"{job.job_id}-o{index}-send",
                    )
                    gang.add(sender_done)
                    sender_started = True

                # the split's scan + operator pipeline ran on a pool worker
                # (or runs inline here); replay its per-batch records —
                # byte shares, cumulative SPL bytes, filled send buffers —
                # so charges and emissions land at the exact simulated
                # points the single-process path produced
                outcome = resolve_compute(
                    futures[position] if futures else None, specs[position]
                )

                orc = tagged.split.stored.__class__.__name__.startswith("Orc")
                for batch_bytes, spl_bytes, full_buffers in outcome.records:
                    if pipe_in:
                        pass  # DAG stage: input is already resident in memory
                    else:
                        yield from self._charge_split_read(
                            cluster, node, node_index, tagged, batch_bytes
                        )
                    cpu_ms = batch_bytes / MB * costs.cpu_map_ms_per_mb
                    if orc:
                        cpu_ms += batch_bytes / MB * costs.cpu_orc_decode_ms_per_mb
                    yield from node.compute(cpu_ms * gc_factor / 1000.0)
                    task.collect_samples.append((sim.now, spl_bytes))
                    fresh = _stamp(full_buffers, scale, index, emit_seq)
                    if overlap:
                        yield from self._emit_buffers(
                            sim, mpi, node, fresh, queue, receive,
                            barrier, nonblocking, pending_deliveries, task,
                        )
                    else:
                        held.extend(fresh)

                result = outcome.result
                fresh = _stamp(outcome.final_buffers, scale,
                               index, emit_seq)
                if overlap:
                    yield from self._emit_buffers(
                        sim, mpi, node, fresh, queue, receive,
                        barrier, nonblocking, pending_deliveries, task,
                    )
                else:
                    held.extend(fresh)
                output_rows.extend(result.output_rows)
                task.rows_read += result.rows_read
                task.kv_pairs += result.kv_pairs
                task.kv_bytes += result.kv_bytes * scale

            if held:
                # no-overlap ablation: everything ships after computation
                yield from self._emit_buffers(
                    sim, mpi, node, held, queue, receive,
                    barrier, nonblocking, pending_deliveries, task,
                )

            if job.is_map_only:
                data_file = write_task_output(
                    job, self.hdfs, index, output_rows, job_scale,
                    writer_node=node_index,
                )
                gang.written.append(data_file.path)
                if not pipe_out:
                    yield from self._hdfs_write(cluster, node, data_file)
        except Interrupt as interrupt:
            # another rank poisoned the communicator (or our node died):
            # stop mid-flight; resources unwind in the finally below
            cause = interrupt.cause
            if isinstance(cause, tuple) and cause and cause[0] == "node-crash":
                # our host died under us: MPI_Abort now, long before the
                # heartbeat monitor declares the node dead
                gang.trip(cause)
            if task.span is not None:
                task.span.add_event("aborted", sim.now,
                                    cause=str(interrupt.cause))
            task.finished = sim.now
            close_task_span(task)
            return
        finally:
            if not nonblocking:
                barrier.deregister()
            if sender_started:
                queue.put(_SENTINEL)  # stop the sender thread
            if held_slot:
                leases.release(node.slots, owner)
            elif acquired is not None:
                leases.cancel(node.slots, acquired, owner)
        if sender_done is not None:
            yield sender_done
        task.finished = sim.now
        if task.span is not None and task.send_events:
            # the O-side shuffle window: first send handed to the engine
            # until the last delivery this task awaited
            task.span.start_child(
                "shuffle", task.send_events[0], category="shuffle",
                sends=len(task.send_events), node=node_index,
            ).finish(sim.now)
        close_task_span(task)

    def _charge_split_read(self, cluster: Cluster, node, node_index: int,
                           tagged: TaggedSplit, nbytes: float):
        source_index = pick_read_source(cluster, tagged, node_index)
        if source_index is None:
            yield from node.disk_read(nbytes)
        else:
            source = cluster.workers[source_index]
            yield from source.disk_read(nbytes)
            yield from cluster.network_transfer(source, node, nbytes)

    def _emit_buffers(self, sim, mpi, node, buffers: List[SendBuffer],
                      queue: SendQueue, receive: ReceiveManager,
                      barrier: DynamicBarrier, nonblocking: bool,
                      pending_deliveries: List, task: TaskTiming):
        """Route filled (already scale-stamped) send partitions to the
        shuffle engine."""
        if not buffers:
            return
        if nonblocking:
            occupancy = get_metrics().histogram("datampi.sendqueue.occupancy")
            for buffer in buffers:
                yield queue.put(buffer)  # blocks when the send queue is full
                task.send_events.append(sim.now)
                occupancy.observe(queue.backlog)
        else:
            # blocking style: synchronized relaxed all-to-all rounds — every
            # participant must reach the round, then every send of the round
            # must complete (MPI_Waitall) before anyone proceeds
            chunk = max(1, self.costs.blocking_round_buffers)
            for start in range(0, len(buffers), chunk):
                round_buffers = buffers[start : start + chunk]
                yield barrier.arrive()
                requests = []
                for buffer in round_buffers:
                    task.send_events.append(sim.now)
                    destination = receive.node_for(buffer.partition)
                    requests.append(mpi.isend(node, destination, buffer.logical_bytes))
                yield mpi.waitall(requests)
                for buffer in round_buffers:
                    yield from receive.deliver(buffer.partition, buffer)
                yield barrier.arrive()  # completion round

    def _sender_thread(self, sim, mpi, node, queue: SendQueue,
                       receive: ReceiveManager, pending_deliveries: List,
                       task: TaskTiming, gang: _Gang):
        """Non-blocking shuffle engine: drains the send queue, issues
        MPI_Isend per buffer and tracks the cached requests."""
        while True:
            buffer = yield queue.get()
            if buffer is _SENTINEL:
                return
            queue.transfer_started()
            yield sim.timeout(self.costs.send_setup_seconds)  # request setup
            destination = receive.node_for(buffer.partition)
            request = mpi.isend(node, destination, buffer.logical_bytes)
            delivery = sim.spawn(
                self._deliver_after(request, queue, receive, buffer),
                f"{task.task_id}-dlv",
            )
            gang.add(delivery)
            pending_deliveries.append(delivery)

    @staticmethod
    def _deliver_after(request, queue: SendQueue, receive: ReceiveManager,
                       buffer: SendBuffer):
        yield request.event
        yield from receive.deliver(buffer.partition, buffer)
        queue.transfer_finished()

    # -- A task ---------------------------------------------------------------------
    def _a_task(self, sim: Simulator, cluster: Cluster, a_slots: List[SlotPool],
                job: MRJob, timing: JobTiming, partition: int, node_index: int,
                small_tables, receive: ReceiveManager, gc_factor: float,
                scale: float, gang: _Gang, doom: Optional[float],
                leases: LeaseManager, owner: Optional[LeaseOwner],
                pipe_out: bool = False):
        costs = self.costs
        node = cluster.workers[node_index]
        task = TaskTiming(task_id=f"a{partition}", kind="a", node=node_index,
                          scheduled=sim.now)
        timing.tasks.append(task)
        open_task_span(timing, task)

        acquired = leases.acquire(a_slots[node_index], owner)
        held_slot = False
        try:
            yield acquired
            held_slot = True
            yield from node.compute(costs.task_setup)
            task.started = sim.now

            received = receive.received_bytes[partition]
            if doom is not None:
                # injected rank failure mid-merge: the whole job dies with it
                yield from node.compute(
                    received / MB * costs.cpu_sort_ms_per_mb * gc_factor
                    * doom / 1000.0
                )
                timing.failed_attempts += 1
                get_metrics().counter("cluster.tasks.failed").add(1)
                if task.span is not None:
                    task.span.add_event("injected-failure", sim.now,
                                        doom=doom, node=node_index)
                task.finished = sim.now
                close_task_span(task)
                gang.trip(("task-failure", task.task_id))
                return

            spilled = receive.spilled_bytes[partition]
            if spilled > 0:
                spill_span = (
                    task.span.start_child("spill", sim.now, category="spill",
                                          bytes=spilled, node=node_index)
                    if task.span is not None else None
                )
                get_metrics().counter("datampi.spill.bytes").add(spilled)
                yield from node.disk_read(spilled)  # read back spilled runs
                if spill_span is not None:
                    spill_span.finish(sim.now)
            if received > 0:
                yield from node.compute(
                    received / MB * costs.cpu_sort_ms_per_mb * gc_factor / 1000.0
                )
            output_rows = run_reducer_functionally(
                job, receive.partition_pairs(partition), small_tables
            )
            yield from node.compute(
                received / MB * costs.cpu_reduce_ms_per_mb * gc_factor / 1000.0
            )
            data_file = write_task_output(
                job, self.hdfs, partition, output_rows, scale,
                writer_node=node_index,
            )
            gang.written.append(data_file.path)
            if not pipe_out:
                # DAG mode skips materializing the stage boundary to HDFS:
                # the next stage's O tasks consume these rows in memory
                yield from self._hdfs_write(cluster, node, data_file)
            receive.release_partition(partition)
            task.kv_bytes = received
        except Interrupt as interrupt:
            cause = interrupt.cause
            if isinstance(cause, tuple) and cause and cause[0] == "node-crash":
                gang.trip(cause)
            if task.span is not None:
                task.span.add_event("aborted", sim.now,
                                    cause=str(interrupt.cause))
            task.finished = sim.now
            close_task_span(task)
            return
        finally:
            if held_slot:
                leases.release(a_slots[node_index], owner)
            else:
                leases.cancel(a_slots[node_index], acquired, owner)
        task.finished = sim.now
        close_task_span(task)

    # -- HDFS write pipeline -------------------------------------------------------
    def _hdfs_write(self, cluster: Cluster, node, data_file):
        yield from hdfs_write_pipeline(cluster, node, data_file)



_SENTINEL = SendBuffer(partition=-1)


def _stamp(buffers: List[SendBuffer], scale: float, sender: int,
           emit_seq: Iterator[int]) -> List[SendBuffer]:
    """Stamp provenance onto freshly filled buffers: the producing
    split's byte-scale plus the emitting O task and its emission
    sequence (the receive side orders pairs by the latter two)."""
    for buffer in buffers:
        buffer.scale = scale
        buffer.sender = sender
        buffer.seq = next(emit_seq)
    return buffers


def _group_splits(
    splits: List[TaggedSplit], num_workers: int, slots_per_node: int
) -> List[tuple]:
    """Pack splits into at most ``num_workers * slots_per_node`` O tasks.

    Locality-aware: splits go to a replica node first, then are divided
    among that node's slots round-robin.  Returns [(node_index, [splits])].
    """
    placement = assign_splits_locality(splits, num_workers)
    per_node: Dict[int, List[TaggedSplit]] = {}
    for tagged, node_index in zip(splits, placement):
        per_node.setdefault(node_index, []).append(tagged)
    groups: List[tuple] = []
    for node_index in sorted(per_node):
        node_splits = per_node[node_index]
        num_tasks = min(slots_per_node, len(node_splits))
        buckets: List[List[TaggedSplit]] = [[] for _ in range(num_tasks)]
        for position, tagged in enumerate(node_splits):
            buckets[position % num_tasks].append(tagged)
        for bucket in buckets:
            groups.append((node_index, bucket))
    return groups
