"""The public session API: engine registry, connect()/Session lifecycle,
the deprecated hive_session alias, and the QueryResult cursor surface."""

import pytest

import repro
from repro import Session, connect, hive_session, make_warehouse
from repro import engines as registry
from repro.common.errors import ExecutionError
from repro.engines.local import LocalEngine
from repro.storage.hdfs import DEFAULT_BLOCK_SIZE
from repro.common.units import MB


# ---------------------------------------------------------------------------
# Engine registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_builtins_registered(self):
        assert {"datampi", "hadoop", "local"} <= set(registry.available())

    def test_aliases_resolve(self):
        assert registry.resolve("dm") == "datampi"
        assert registry.resolve("MR") == "hadoop"
        assert registry.resolve("local") == "local"

    def test_unknown_engine_lists_available(self, warehouse):
        hdfs, _ = warehouse
        with pytest.raises(ValueError, match="datampi"):
            registry.create("spark", hdfs)

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register("local", LocalEngine)

    def test_replace_allows_override(self):
        registry.register("local", LocalEngine, replace=True)
        assert "local" in registry.available()

    def test_custom_engine_round_trip(self, warehouse):
        hdfs, metastore = warehouse

        def factory(hdfs, spec=None):
            return LocalEngine(hdfs)

        registry.register("mine", factory, aliases=("m",))
        try:
            session = connect(engine="m", hdfs=hdfs, metastore=metastore)
            rows = session.query("SELECT count(*) FROM emp").rows
            assert rows == [(7,)]
        finally:
            registry.unregister("mine")
        assert "mine" not in registry.available()
        assert registry.resolve("m") == "m"  # alias dropped too

    def test_create_skips_spec_for_specless_factories(self, warehouse):
        hdfs, _ = warehouse
        engine = registry.create("local", hdfs)
        assert isinstance(engine, LocalEngine)


# ---------------------------------------------------------------------------
# connect() / Session
# ---------------------------------------------------------------------------


class TestConnect:
    def test_context_manager_tpch_end_to_end(self):
        from repro.bench import fresh_tpch
        from repro.workloads.tpch import tpch_query

        hdfs, metastore = fresh_tpch(sf=1, lineitem_sample=400)
        with repro.connect(engine="datampi", hdfs=hdfs, metastore=metastore) as s:
            result = s.query(tpch_query(1, 1))
            assert result.rows, "TPC-H Q1 returned no groups"
            assert result.simulated_seconds > 0
            assert result.trace is not None and result.trace.find("job")
        assert s.closed

    def test_execute_after_close_raises(self, warehouse):
        hdfs, metastore = warehouse
        session = connect(engine="local", hdfs=hdfs, metastore=metastore)
        session.close()
        session.close()  # idempotent
        with pytest.raises(ExecutionError, match="closed"):
            session.execute("SELECT 1 FROM emp")

    def test_engine_instance_passthrough(self, warehouse):
        hdfs, metastore = warehouse
        engine = LocalEngine(hdfs)
        session = connect(engine=engine, hdfs=hdfs, metastore=metastore)
        assert session.engine is engine
        assert session.engine_name == "local"

    def test_conf_accepts_dict(self, warehouse):
        hdfs, metastore = warehouse
        session = connect(engine="local", hdfs=hdfs, metastore=metastore,
                          conf={"hive.exec.reducers.max": 3})
        assert session.conf.get_int("hive.exec.reducers.max", 0) == 3

    def test_repr_shows_state(self, warehouse):
        hdfs, metastore = warehouse
        with connect(engine="local", hdfs=hdfs, metastore=metastore) as session:
            assert "open" in repr(session)
        assert "closed" in repr(session)


class TestHiveSessionAlias:
    def test_emits_deprecation_warning(self, warehouse):
        hdfs, metastore = warehouse
        with pytest.warns(DeprecationWarning, match="repro.connect"):
            session = hive_session(engine="local", hdfs=hdfs, metastore=metastore)
        assert isinstance(session, Session)

    def test_still_executes(self, warehouse):
        hdfs, metastore = warehouse
        with pytest.warns(DeprecationWarning):
            session = hive_session(engine="local", hdfs=hdfs, metastore=metastore)
        assert session.query("SELECT count(*) FROM emp").rows == [(7,)]


# ---------------------------------------------------------------------------
# make_warehouse
# ---------------------------------------------------------------------------


class TestMakeWarehouse:
    def test_defaults(self):
        hdfs, metastore = make_warehouse()
        assert hdfs.num_workers == 7
        assert hdfs.block_size == DEFAULT_BLOCK_SIZE
        assert metastore.hdfs is hdfs

    def test_custom_block_size(self):
        hdfs, _ = make_warehouse(num_workers=3, block_size=128 * MB)
        assert hdfs.num_workers == 3
        assert hdfs.block_size == 128 * MB


# ---------------------------------------------------------------------------
# QueryResult cursor surface
# ---------------------------------------------------------------------------


class TestQueryResult:
    @pytest.fixture()
    def result(self, local_session):
        return local_session.query(
            "SELECT dept, count(*) AS n FROM emp WHERE dept IS NOT NULL "
            "GROUP BY dept ORDER BY dept"
        )

    def test_iteration_and_len(self, result):
        assert list(result) == result.rows
        assert len(result) == len(result.rows)

    def test_fetchall_copies(self, result):
        fetched = result.fetchall()
        assert fetched == result.rows
        fetched.append(("zz", 0))
        assert fetched != result.rows

    def test_to_pydict(self, result):
        columns = result.to_pydict()
        assert list(columns) == result.column_names()
        assert columns[result.column_names()[0]] == [row[0] for row in result.rows]

    def test_statement_docstring_mentions_explain(self):
        from repro.core.driver import QueryResult

        assert "explain" in QueryResult.__doc__
