"""Concurrent-workload benchmark: scheduling policies on one shared cluster.

A mixed workload (long aggregation queries + short scans, several
pools) is submitted concurrently to one simulated cluster under each
scheduling policy, on both cluster engines.  Reported per policy:

* **makespan** — simulated seconds until the last query finishes;
* **per-query latency percentiles** (p50/p95, submit-to-finish);
* **Jain's fairness index over slowdowns** — each query's latency
  divided by its solo (empty-cluster) latency, so the index measures
  how evenly the policies spread the cost of sharing, independent of
  how long each query is intrinsically.

Every run also cross-checks correctness: each query's rows under every
policy must be byte-identical to its solo run.

Standalone (the check.sh gate runs it with ``CHECK_CONCURRENCY_FULL=1``)::

    python benchmarks/bench_concurrency.py [--smoke] [--output OUT.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))  # benchhelpers
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # runnable without an installed package
    sys.path.insert(0, _SRC)

from benchhelpers import results_path  # noqa: E402

from repro import connect  # noqa: E402
from repro.bench import fresh_hibench  # noqa: E402
from repro.common.config import (  # noqa: E402
    SCHED_DEFAULT_POOL,
    SCHED_POLICY,
    SCHED_POOLS,
)
from repro.sched import POLICIES, jain_fairness_index  # noqa: E402

LONG_QUERY = (
    "SELECT sourceip, SUM(adrevenue), COUNT(*), AVG(adrevenue) "
    "FROM uservisits GROUP BY sourceip"
)
# rankings is ~18x smaller than uservisits: a genuinely short scan, so
# the fifo-vs-fair contrast measures scheduling, not intrinsic runtime
SHORT_QUERY = "SELECT COUNT(*) FROM rankings"

POOLS = "etl:weight=2; adhoc:weight=1"
ENGINES = ("hadoop", "datampi")


def workload(smoke: bool):
    """(pool, sql) submission schedule: long ETL queries ahead of short
    ad-hoc ones — the adversarial case for FIFO."""
    longs = 2 if smoke else 3
    shorts = 1 if smoke else 3
    plan = [("etl", LONG_QUERY)] * longs + [("adhoc", SHORT_QUERY)] * shorts
    return plan


def _fresh(smoke: bool):
    if smoke:
        return fresh_hibench(5, sample_uservisits=2000)
    return fresh_hibench(20, sample_uservisits=8000)


def solo_latencies(engine: str, smoke: bool):
    """Each distinct query's latency (and rows) on an empty cluster."""
    hdfs, metastore = _fresh(smoke)
    latencies = {}
    rows = {}
    for sql in dict.fromkeys(sql for _pool, sql in workload(smoke)):
        with connect(engine=engine, hdfs=hdfs, metastore=metastore) as session:
            result = session.query(sql)
            latencies[sql] = result.simulated_seconds
            rows[sql] = result.rows
    return latencies, rows


def run_policy(engine: str, policy: str, smoke: bool, solo_rows):
    hdfs, metastore = _fresh(smoke)
    conf = {SCHED_POLICY: policy, SCHED_POOLS: POOLS, SCHED_DEFAULT_POOL: "adhoc"}
    with connect(engine=engine, hdfs=hdfs, metastore=metastore, conf=conf) as session:
        handles = [
            (pool, sql, session.submit(sql, pool=pool))
            for pool, sql in workload(smoke)
        ]
        session.scheduler.drain()
        latencies = []
        for pool, sql, handle in handles:
            result = handle.result()
            if result.rows != solo_rows[sql]:
                raise AssertionError(
                    f"{engine}/{policy}: rows diverged from solo for {sql!r}"
                )
            latencies.append((pool, sql, handle.latency))
        summary = session.scheduler.summary()
        if summary["oversubscribed_pools"]:
            raise AssertionError(
                f"{engine}/{policy}: oversubscribed "
                f"{summary['oversubscribed_pools']}"
            )
    return latencies, summary["makespan"]


def percentile(values, fraction: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run(smoke: bool):
    report = {}
    for engine in ENGINES:
        solo, solo_rows = solo_latencies(engine, smoke)
        for policy in POLICIES:
            latencies, makespan = run_policy(engine, policy, smoke, solo_rows)
            slowdowns = [latency / solo[sql] for _pool, sql, latency in latencies]
            values = [latency for _pool, _sql, latency in latencies]
            adhoc = [latency for pool, _sql, latency in latencies
                     if pool == "adhoc"]
            report[f"{engine}/{policy}"] = {
                "makespan": round(makespan, 3),
                "p50_latency": round(percentile(values, 0.50), 3),
                "p95_latency": round(percentile(values, 0.95), 3),
                "adhoc_p50_latency": round(percentile(adhoc, 0.50), 3),
                "fairness_jain_slowdown": round(
                    jain_fairness_index(slowdowns), 4
                ),
                "latencies": [round(v, 3) for v in values],
            }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small dataset + fewer queries (CI gate)")
    parser.add_argument("--output", default=results_path("BENCH_concurrency.json"),
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    report = run(args.smoke)

    header = (f"{'engine/policy':>18} {'makespan':>9} {'p50':>8} {'p95':>8} "
              f"{'adhoc50':>8} {'jain':>6}")
    print(header)
    for key, cell in report.items():
        print(f"{key:>18} {cell['makespan']:>9.2f} {cell['p50_latency']:>8.2f} "
              f"{cell['p95_latency']:>8.2f} {cell['adhoc_p50_latency']:>8.2f} "
              f"{cell['fairness_jain_slowdown']:>6.3f}")

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"\nwrote {args.output}")

    # shape check: fair sharing must help the short ad-hoc queries stuck
    # behind the ETL pool on the task-granular engine
    fifo = report["hadoop/fifo"]
    fair = report["hadoop/fair"]
    if not fair["adhoc_p50_latency"] < fifo["adhoc_p50_latency"]:
        print("FAIL: fair-share did not beat FIFO ad-hoc latency on hadoop",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
