"""Vectorized map-side operators over :class:`~repro.common.rows.ColumnBatch`.

The second execution mode of the map pipeline (``repro.exec.vectorized``,
default on): instead of pushing one list of row tuples per operator hop,
each operator runs a codegen'd whole-column loop (see the
``codegen_*_kernel`` family in :mod:`repro.exec.expressions`) against a
column batch.  Filters narrow the batch's *selection vector* rather than
copying data; rows materialize back into tuples only at the serde/shuffle
boundary (ReduceSink) and at FileSink — Hive's VectorizedRowBatch design.

The mode is all-or-nothing per task: :func:`build_vector_pipeline` returns
``None`` when any descriptor or expression falls outside the kernel
subset, and :class:`~repro.exec.mapper.ExecMapper` then runs the row
pipeline, which remains the ground truth.  Both modes are byte-identical:
same rows in the same order, same shuffle pair sizes, same simulated
seconds (the engines charge bytes, not Python frames).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import ExecutionError
from repro.common.rows import ColumnBatch
from repro.exec.expressions import (
    InputRef,
    codegen_filter_kernel,
    codegen_group_kernel,
    codegen_keys_kernel,
    codegen_project_kernel,
    codegen_sink_kernel,
    compile_many,
)
from repro.exec.operators import (
    FileSinkDesc,
    FilterDesc,
    LimitDesc,
    MapGroupByDesc,
    MapJoinDesc,
    OperatorContext,
    ReduceSinkDesc,
    SelectDesc,
)

Row = Tuple[object, ...]


class VectorizationUnsupported(Exception):
    """Raised while building a vector pipeline for an unsupported plan."""


#: Compile-once cache for pure per-descriptor artifacts (kernels, map-join
#: hash tables).  Descriptors live inside the driver's cached plans, so
#: every task of every run re-sees the same objects; pinning the anchor
#: objects in the value keeps their id()s from being recycled by the GC.
_KERNEL_CACHE: Dict[tuple, tuple] = {}


def _cached(kind: str, anchors: tuple, build):
    key = (kind,) + tuple(id(anchor) for anchor in anchors)
    hit = _KERNEL_CACHE.get(key)
    if hit is not None and all(a is b for a, b in zip(hit[0], anchors)):
        return hit[1]
    value = build()
    _KERNEL_CACHE[key] = (anchors, value)
    return value


def _live(batch: ColumnBatch):
    """The batch's live positions (selection vector or the dense range)."""
    return batch.sel if batch.sel is not None else range(batch.size)


class VectorOperator:
    def __init__(self, child: Optional["VectorOperator"]):
        self.child = child

    def process_batch(self, batch: ColumnBatch) -> None:
        raise NotImplementedError

    def close(self) -> None:
        if self.child is not None:
            self.child.close()


class VectorFilterOperator(VectorOperator):
    """Narrows the selection vector; column data is never copied."""

    def __init__(self, desc: FilterDesc, child: VectorOperator):
        super().__init__(child)
        self._kernel = _cached(
            "filter", (desc,), lambda: codegen_filter_kernel(desc.predicate)
        )
        if self._kernel is None:
            raise VectorizationUnsupported("filter predicate")

    def process_batch(self, batch: ColumnBatch) -> None:
        sel = self._kernel(batch.columns, _live(batch))
        if sel:
            self.child.process_batch(batch.with_selection(sel))


class VectorSelectOperator(VectorOperator):
    """Projection: pure column references re-point at the input columns
    (zero copy, selection preserved); computed expressions evaluate over
    the selected rows into dense output columns."""

    def __init__(self, desc: SelectDesc, child: VectorOperator):
        super().__init__(child)
        if desc.expressions and all(
            type(expression) is InputRef for expression in desc.expressions
        ):
            self._indices: Optional[List[int]] = [
                expression.index for expression in desc.expressions
            ]
            self._kernel = None
        else:
            self._indices = None
            self._kernel = _cached(
                "project", (desc,),
                lambda: codegen_project_kernel(desc.expressions),
            )
            if self._kernel is None or not desc.expressions:
                raise VectorizationUnsupported("projection list")

    def process_batch(self, batch: ColumnBatch) -> None:
        if self._indices is not None:
            columns = [batch.columns[index] for index in self._indices]
            self.child.process_batch(ColumnBatch(columns, batch.size, batch.sel))
            return
        columns = self._kernel(batch.columns, _live(batch))
        self.child.process_batch(ColumnBatch(columns, batch.live_count))


class VectorMapGroupByOperator(VectorOperator):
    """Map-side partial aggregation: the whole inner loop (key build,
    hash probe, pressure flush, accumulator updates) is one generated
    frame sharing its accumulation statements with the row path."""

    def __init__(self, desc: MapGroupByDesc, child: VectorOperator):
        super().__init__(child)
        fused = _cached(
            "group", (desc,),
            lambda: codegen_group_kernel(
                desc.key_expressions, desc.aggregates,
                desc.max_groups_in_memory,
            ),
        )
        if fused is None:
            raise VectorizationUnsupported("group-by aggregates")
        self._kernel, self._initial, self._scalar_key = fused
        self._table: Dict[object, list] = {}
        self.flushes = 0

    def process_batch(self, batch: ColumnBatch) -> None:
        self._kernel(
            batch.columns, _live(batch), self._table, self._initial, self._flush
        )

    def _flush(self) -> None:
        self.flushes += 1
        if not self._table:
            return
        # flat slots are exactly the concatenated partial tuples
        if self._scalar_key:
            rows = [
                (key,) + tuple(accumulators)
                for key, accumulators in self._table.items()
            ]
        else:
            rows = [
                key + tuple(accumulators)
                for key, accumulators in self._table.items()
            ]
        self._table.clear()
        self.child.process_batch(ColumnBatch.from_rows(rows))

    def close(self) -> None:
        self._flush()
        super().close()


class VectorMapJoinOperator(VectorOperator):
    """Broadcast hash join: probe keys come from a column kernel; matched
    big-side rows are gathered as an index list (late materialization —
    output columns are built straight from the input columns)."""

    def __init__(self, desc: MapJoinDesc, child: VectorOperator,
                 context: OperatorContext):
        super().__init__(child)
        self._probe_keys = _cached(
            "probe-keys", (desc,),
            lambda: codegen_keys_kernel(desc.probe_key_expressions),
        )
        if self._probe_keys is None:
            raise VectorizationUnsupported("map-join probe keys")
        self._left_join = desc.join_type == "left"
        self._null_pad = (None,) * desc.small_width
        self._swap = desc.swap_output
        try:
            small_rows = context.small_tables[desc.small_location]
        except KeyError:
            raise ExecutionError(
                f"map-join small table not loaded: {desc.small_location}"
            ) from None
        # the hash table is read-only after the build, so every task of
        # the job (they share the broadcast row list) reuses one build
        self._hash: Dict[Row, List[Row]] = _cached(
            "mapjoin-hash", (desc, small_rows),
            lambda: self._build_hash(desc, small_rows),
        )

    @staticmethod
    def _build_hash(desc: MapJoinDesc, small_rows) -> Dict[Row, List[Row]]:
        build_key = compile_many(desc.build_key_expressions)
        table: Dict[Row, List[Row]] = {}
        for row in small_rows:
            key = build_key(row)
            if any(part is None for part in key):
                continue  # NULL never matches an equi-join key
            table.setdefault(key, []).append(row)
        return table

    def process_batch(self, batch: ColumnBatch) -> None:
        keys = self._probe_keys(batch.columns, _live(batch))
        table_get = self._hash.get
        left_join = self._left_join
        null_pad = self._null_pad
        gather: List[int] = []
        gather_append = gather.append
        small_out: List[Row] = []
        small_append = small_out.append
        for position, key in zip(_live(batch), keys):
            matches = table_get(key) if key is not None else None
            if matches:
                for small_row in matches:
                    gather_append(position)
                    small_append(small_row)
            elif left_join:
                gather_append(position)
                small_append(null_pad)
        if not gather:
            return
        big_columns = [
            [column[i] for i in gather] for column in batch.columns
        ]
        small_columns = [list(values) for values in zip(*small_out)]
        if self._swap:
            columns = small_columns + big_columns
        else:
            columns = big_columns + small_columns
        self.child.process_batch(ColumnBatch(columns, len(gather)))


class VectorLimitOperator(VectorOperator):
    def __init__(self, desc: LimitDesc, child: VectorOperator):
        super().__init__(child)
        self._remaining = desc.limit

    def process_batch(self, batch: ColumnBatch) -> None:
        if self._remaining <= 0:
            return
        batch = batch.take_first(self._remaining)
        self._remaining -= batch.live_count
        self.child.process_batch(batch)


class VectorReduceSinkOperator(VectorOperator):
    """Terminal: the fused sink kernel encodes each key once (the bytes
    drive both the partition hash and the wire size), pre-warms the pair
    size memo and feeds the engine's collector — identical pair stream
    to the row path's ``ReduceSinkOperator.process_rows``."""

    def __init__(self, desc: ReduceSinkDesc, context: OperatorContext):
        super().__init__(None)
        self._kernel = _cached(
            "sink", (desc,),
            lambda: codegen_sink_kernel(
                desc.key_expressions, desc.value_expressions, desc.tag
            ),
        )
        if self._kernel is None:
            raise VectorizationUnsupported("reduce-sink key/value")
        self._context = context

    def process_batch(self, batch: ColumnBatch) -> None:
        context = self._context
        pairs, nbytes = self._kernel(
            batch.columns,
            _live(batch),
            context.num_partitions,
            context.collector.collect_batch,
            context.kv_size_histogram,
        )
        context.kv_pairs_out += pairs
        context.kv_bytes_out += nbytes

    def close(self) -> None:
        pass


class VectorFileSinkOperator(VectorOperator):
    """Terminal: the only place a map-only pipeline materializes rows."""

    def __init__(self, desc: FileSinkDesc, context: OperatorContext):
        super().__init__(None)
        self._context = context

    def process_batch(self, batch: ColumnBatch) -> None:
        rows = batch.to_rows()
        self._context.rows_emitted += len(rows)
        self._context.output_rows.extend(rows)

    def close(self) -> None:
        pass


def build_vector_pipeline(
    descriptors: List[object], context: OperatorContext
) -> Optional[VectorOperator]:
    """Instantiate a vector pipeline from descriptors (sink must be last).

    Returns ``None`` when the plan cannot be fully vectorized — the task
    then runs the row pipeline instead (all-or-nothing per task, so the
    two modes never mix within one operator chain).
    """
    if not descriptors:
        return None
    try:
        tail = descriptors[-1]
        if isinstance(tail, ReduceSinkDesc):
            operator: VectorOperator = VectorReduceSinkOperator(tail, context)
        elif isinstance(tail, FileSinkDesc):
            operator = VectorFileSinkOperator(tail, context)
        else:
            return None
        for descriptor in reversed(descriptors[:-1]):
            if isinstance(descriptor, FilterDesc):
                operator = VectorFilterOperator(descriptor, operator)
            elif isinstance(descriptor, SelectDesc):
                operator = VectorSelectOperator(descriptor, operator)
            elif isinstance(descriptor, MapGroupByDesc):
                operator = VectorMapGroupByOperator(descriptor, operator)
            elif isinstance(descriptor, MapJoinDesc):
                operator = VectorMapJoinOperator(descriptor, operator, context)
            elif isinstance(descriptor, LimitDesc):
                operator = VectorLimitOperator(descriptor, operator)
            else:
                return None
    except VectorizationUnsupported:
        return None
    return operator
