"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.workload == "none"
        assert args.engine is None

    def test_repeatable_engines(self):
        args = build_parser().parse_args(["--engine", "hadoop", "--engine", "datampi"])
        assert args.engine == ["hadoop", "datampi"]

    def test_tpch_query_range(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--tpch-query", "23"])


class TestMain:
    def run_cli(self, argv, capsys, stdin_text=""):
        import sys

        old_stdin = sys.stdin
        sys.stdin = io.StringIO(stdin_text)
        try:
            code = main(argv)
        finally:
            sys.stdin = old_stdin
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_execute_on_two_engines(self, capsys):
        code, out, err = self.run_cli(
            ["--workload", "tpch", "--sf", "10", "--sample", "1500",
             "--engine", "hadoop", "--engine", "datampi",
             "-e", "SELECT count(*) FROM region"],
            capsys,
        )
        assert code == 0
        assert out.count("5") >= 2  # 5 regions, printed per engine
        assert "[hadoop]" in err and "[datampi]" in err

    def test_quiet_suppresses_timing(self, capsys):
        code, out, err = self.run_cli(
            ["--workload", "tpch", "--sf", "10", "--sample", "1500", "--quiet",
             "-e", "SELECT count(*) FROM nation"],
            capsys,
        )
        assert "25" in out
        assert "[datampi]" not in err.replace("repro>", "")

    def test_set_option_applies(self, capsys):
        code, out, err = self.run_cli(
            ["--workload", "tpch", "--sf", "10", "--sample", "1500",
             "--set", "hive.datampi.parallelism=enhanced",
             "-e", "SELECT count(*) FROM supplier"],
            capsys,
        )
        assert code == 0

    def test_tpch_query_flag(self, capsys):
        code, out, err = self.run_cli(
            ["--workload", "tpch", "--sf", "10", "--sample", "1500",
             "--engine", "local", "--tpch-query", "6", "--quiet"],
            capsys,
        )
        assert code == 0
        assert out.strip()  # Q6 prints one revenue number

    def test_sql_error_reported_not_fatal(self, capsys):
        code, out, err = self.run_cli(
            ["--workload", "none", "--engine", "local", "-e", "SELECT x FROM ghost"],
            capsys,
        )
        assert code == 0
        assert "ERROR" in err

    def test_interactive_loop(self, capsys):
        code, out, err = self.run_cli(
            ["--workload", "tpch", "--sf", "10", "--sample", "1500",
             "--engine", "local", "--quiet", "--interactive"],
            capsys,
            stdin_text="SELECT count(*) FROM region;\nquit\n",
        )
        assert code == 0
        assert "5" in out
