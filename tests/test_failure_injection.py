"""Tests for the fault-injection extension.

MapReduce retries failed task attempts; an MPI job aborts and re-runs —
the classic fault-tolerance trade-off the paper's §I alludes to (Hive on
MapReduce "can scale out easily and tolerate faults").
"""

import pytest

from repro import hive_session
from repro.common.config import Configuration
from repro.engines.base import compare_result_rows
from repro.engines.hadoop.engine import _failed_attempt_fractions

SQL = "SELECT grp, sum(val) FROM facts GROUP BY grp ORDER BY grp"


class TestFailedAttemptDraws:
    def test_zero_rate_no_failures(self):
        assert _failed_attempt_fractions(0.0, "x") == []

    def test_deterministic(self):
        assert _failed_attempt_fractions(0.5, "seed-a") == \
            _failed_attempt_fractions(0.5, "seed-a")

    def test_bounded_attempts(self):
        fractions = _failed_attempt_fractions(1.0, "always")
        assert len(fractions) == 3  # max 4 attempts -> at most 3 failures
        assert all(0.1 <= f <= 0.9 for f in fractions)

    def test_rate_scales_frequency(self):
        low = sum(bool(_failed_attempt_fractions(0.05, f"s{i}")) for i in range(300))
        high = sum(bool(_failed_attempt_fractions(0.5, f"s{i}")) for i in range(300))
        assert high > low


def _run(engine, hdfs, metastore, rate):
    conf = Configuration({"repro.failure.rate": str(rate)})
    session = hive_session(engine=engine, hdfs=hdfs, metastore=metastore, conf=conf)
    return session.query(SQL)


class TestEngineBehaviour:
    @pytest.mark.parametrize("engine", ["hadoop", "datampi"])
    def test_results_survive_failures(self, big_warehouse, engine):
        hdfs, metastore = big_warehouse
        clean = _run(engine, hdfs, metastore, 0.0)
        faulty = _run(engine, hdfs, metastore, 0.3)
        assert compare_result_rows(clean.rows, faulty.rows, ordered=True)

    @pytest.mark.parametrize("engine", ["hadoop", "datampi"])
    def test_failures_cost_time(self, big_warehouse, engine):
        hdfs, metastore = big_warehouse
        clean = _run(engine, hdfs, metastore, 0.0).execution.total_seconds
        faulty = _run(engine, hdfs, metastore, 0.4).execution.total_seconds
        assert faulty > clean

    def test_mpi_restart_coarser_than_mapreduce_retry(self, big_warehouse):
        """At a moderate failure rate, MapReduce's per-task retry loses a
        smaller *fraction* of the job than DataMPI's whole-job restart."""
        hdfs, metastore = big_warehouse
        rate = 0.05
        overheads = {}
        for engine in ("hadoop", "datampi"):
            clean = _run(engine, hdfs, metastore, 0.0).execution.total_seconds
            faulty = _run(engine, hdfs, metastore, rate).execution.total_seconds
            overheads[engine] = (faulty - clean) / clean
        assert overheads["datampi"] > overheads["hadoop"]
