"""Hadoop SequenceFile-style binary row format.

HiBench's Hive workloads use sequence files by default (paper §V-B).  The
encoding is the tagged binary serde from :mod:`repro.common.kv` applied to
each row (empty key, row as value) plus a small per-record header —
the same ballpark overhead a real ``SequenceFile<NullWritable, Text>``
carries.  Like Text it is row-oriented: no pruning, no pushdown.
"""

from __future__ import annotations

from itertools import accumulate
from typing import List, Optional, Sequence

from repro.common.kv import _FIXED_FIELD_SIZES, fields_size
from repro.common.rows import Schema
from repro.storage.formats.base import (
    BatchScanResult,
    FileFormat,
    Row,
    ScanResult,
    StatsConjunct,
    StoredFile,
    contiguous_scan_batch,
    register_format,
)

_RECORD_HEADER_BYTES = 8  # record length + key length words


def record_size(row: Row) -> int:
    """Encoded size of one row as a sequence-file record."""
    # empty key tuple contributes exactly its arity byte
    return _RECORD_HEADER_BYTES + 1 + fields_size(row)


def _column_size_contribution(column):
    """Per-row encoded sizes of one column, exploiting type homogeneity.

    Returns an ``int`` when every row pays the same fixed tag size, a
    list of per-row sizes for string-bearing columns, or ``None`` when
    a subclassed/exotic type means the per-row ``record_size`` fallback
    must size the whole file.  The type scan and the size computations
    are C-level passes — no per-field Python dispatch.
    """
    types = set(map(type, column))
    if types <= _FIXED_FIELD_SIZES.keys():
        if len(types) == 1:
            return _FIXED_FIELD_SIZES[next(iter(types))]
        fixed = _FIXED_FIELD_SIZES
        return [fixed[type(value)] for value in column]
    if types == {str}:
        # one isascii pass over the concatenation beats one per element;
        # all-ASCII columns (the norm) then size as bare C-level lengths
        if "".join(column).isascii():
            return [3 + length for length in map(len, column)]
        return [
            3 + (len(value) if value.isascii() else len(value.encode("utf-8")))
            for value in column
        ]
    if types <= {str, type(None), bool, int, float}:
        fixed = _FIXED_FIELD_SIZES
        return [
            3 + (len(value) if value.isascii() else len(value.encode("utf-8")))
            if type(value) is str else fixed[type(value)]
            for value in column
        ]
    return None


class SequenceStoredFile(StoredFile):
    def __init__(self, schema: Schema, rows: List[Row]):
        super().__init__(schema, rows)
        # INSERT output tables re-encode on every write, so the build
        # sizes every row; doing it column-wise turns the per-row
        # per-field dispatch into a few C-level passes.  The sizes are
        # identical to per-row record_size() by construction.
        self._offsets = [0]
        if not rows:
            return
        constant = _RECORD_HEADER_BYTES + 2  # record header + key + row arity
        varying: List[List[int]] = []
        for column in zip(*rows):
            contribution = _column_size_contribution(column)
            if contribution is None:  # exotic types: row-by-row fallback
                running = 0
                for row in rows:
                    running += record_size(row)
                    self._offsets.append(running)
                return
            if isinstance(contribution, int):
                constant += contribution
            else:
                varying.append(contribution)
        if not varying:
            sizes: Sequence[int] = [constant] * len(rows)
        elif len(varying) == 1:
            sizes = [constant + size for size in varying[0]]
        else:
            sizes = [constant + sum(parts) for parts in zip(*varying)]
        self._offsets.extend(accumulate(sizes))

    @property
    def total_bytes(self) -> int:
        return self._offsets[-1]

    def bytes_for_range(self, row_start: int, row_count: int) -> int:
        row_end = min(row_start + row_count, self.row_count)
        row_start = min(row_start, self.row_count)
        return self._offsets[row_end] - self._offsets[row_start]

    def scan(
        self,
        row_start: int,
        row_count: int,
        columns: Optional[Sequence[str]] = None,
        stats_conjuncts: Optional[Sequence[StatsConjunct]] = None,
    ) -> ScanResult:
        row_end = min(row_start + row_count, self.row_count)
        rows = self.rows[row_start:row_end]
        return ScanResult(rows=rows, bytes_read=self.bytes_for_range(row_start, row_count))

    def scan_batch(
        self,
        row_start: int,
        row_count: int,
        columns: Optional[Sequence[str]] = None,
        stats_conjuncts: Optional[Sequence[StatsConjunct]] = None,
    ) -> BatchScanResult:
        # row-oriented: hints are ignored exactly as scan() ignores them
        return contiguous_scan_batch(self, row_start, row_count)


class SequenceFormat(FileFormat):
    name = "sequence"

    def build(self, schema: Schema, rows: List[Row]) -> SequenceStoredFile:
        return SequenceStoredFile(schema, rows)


register_format(SequenceFormat())
