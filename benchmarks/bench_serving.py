"""Traffic-at-scale serving benchmark: open-loop arrivals per policy.

Generates the same seeded open-loop arrival schedule (bursty process,
Zipf-skewed popularity over the read-only HiBench mix, thousands of
client sessions spread over scheduler pools) and replays it against a
fresh shared cluster under each admission policy.  Reported per policy:

* **p50/p95/p99 submit-to-finish latency** (simulated seconds);
* **queue depth over time** (peak, mean, decimated series);
* **rejection rate** — arrivals bounced by pool admission control;
* **deadline-miss rate** — queries past their submit-relative budget.

The full run offers >=10k queries to a >=100-node simulated cluster
(``--guard-seconds`` bounds the harness wall clock so a kernel
regression shows up as a failure, not a hang); ``--smoke`` is the small
CI gate.  Standalone::

    python benchmarks/bench_serving.py [--smoke] [--guard-seconds N]
                                       [--output OUT.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))  # benchhelpers
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # runnable without an installed package
    sys.path.insert(0, _SRC)

from benchhelpers import results_path  # noqa: E402

from repro import connect  # noqa: E402
from repro.common.config import (  # noqa: E402
    HEARTBEAT_ENABLED,
    SCHED_MAX_CONCURRENT,
    SCHED_POLICY,
    SCHED_POOLS,
)
from repro.sched import POLICIES  # noqa: E402
from repro.workloads.serving import (  # noqa: E402
    ServingConfig,
    generate_arrivals,
    load_serving_warehouse,
    run_serving,
)

ENGINE = "llap"  # the serving engine: daemons + caches soak up repeats
POOL_WEIGHTS = {"bi": 3.0, "etl": 1.0, "adhoc": 2.0}
POOLS = ("bi:weight=3,cap=24,queue=256; etl:weight=1,cap=8,queue=48; "
         "adhoc:weight=2,cap=16,queue=96")
SMOKE_POOLS = ("bi:weight=3,cap=6,queue=24; etl:weight=1,cap=2,queue=8; "
               "adhoc:weight=2,cap=4,queue=12")


def serving_config(smoke: bool) -> ServingConfig:
    if smoke:
        return ServingConfig(
            num_queries=300, num_sessions=60, process="bursty", rate=2.5,
            burst_factor=3.0, burst_fraction=0.25, burst_cycle=30.0,
            zipf_s=1.1, pool_weights=POOL_WEIGHTS,
            deadline=45.0, deadline_fraction=0.15, seed=11,
        )
    return ServingConfig(
        num_queries=4000, num_sessions=2000, process="bursty", rate=8.0,
        burst_factor=3.0, burst_fraction=0.25, burst_cycle=60.0,
        zipf_s=1.1, pool_weights=POOL_WEIGHTS,
        deadline=60.0, deadline_fraction=0.15, seed=11,
    )


def run_policy(policy: str, smoke: bool, arrivals):
    num_workers = 20 if smoke else 100  # +1 master node = 21 / 101 nodes
    conf = {
        HEARTBEAT_ENABLED: False,  # 1 tick x 100 workers adds nothing here
        SCHED_POLICY: policy,
        SCHED_POOLS: SMOKE_POOLS if smoke else POOLS,
        SCHED_MAX_CONCURRENT: 12 if smoke else 48,
    }
    with connect(engine=ENGINE, num_workers=num_workers, conf=conf) as session:
        load_serving_warehouse(
            session.hdfs, session.metastore,
            nominal_gb=0.5 if smoke else 2.0,
            sample_uservisits=1000 if smoke else 4000,
        )
        return run_serving(session, arrivals)


def run(smoke: bool):
    config = serving_config(smoke)
    arrivals = generate_arrivals(config)
    report = {
        "engine": ENGINE,
        "nodes": (20 if smoke else 100) + 1,
        "offered_per_policy": config.num_queries,
        "sessions": config.num_sessions,
        "arrival_process": config.process,
        "mean_rate_qps": config.rate,
        "zipf_s": config.zipf_s,
        "policies": {},
    }
    for policy in POLICIES:
        report["policies"][policy] = run_policy(policy, smoke, arrivals).to_dict()
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small cluster + fewer queries (CI gate)")
    parser.add_argument("--guard-seconds", type=float, default=600.0,
                        help="fail if the harness wall clock exceeds this")
    parser.add_argument("--output", default=results_path("BENCH_serving.json"),
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    started = time.monotonic()
    report = run(args.smoke)
    wall = time.monotonic() - started
    report["wall_clock_seconds"] = round(wall, 3)

    header = (f"{'policy':>10} {'p50':>8} {'p95':>8} {'p99':>8} "
              f"{'qpeak':>6} {'rej%':>6} {'miss%':>6} {'qps':>8}")
    print(header)
    for policy, cell in report["policies"].items():
        print(f"{policy:>10} {cell['latency_p50']:>8.2f} "
              f"{cell['latency_p95']:>8.2f} {cell['latency_p99']:>8.2f} "
              f"{cell['queue_depth_peak']:>6d} "
              f"{100 * cell['rejection_rate']:>6.2f} "
              f"{100 * cell['deadline_miss_rate']:>6.2f} "
              f"{cell['throughput_qps']:>8.2f}")

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"\nwrote {args.output} ({wall:.1f}s wall clock)")

    total = sum(cell["offered"] for cell in report["policies"].values())
    completed = sum(cell["succeeded"] for cell in report["policies"].values())
    if not args.smoke and total < 10_000:
        print(f"FAIL: offered only {total} queries (< 10k)", file=sys.stderr)
        return 1
    if completed == 0:
        print("FAIL: no query completed", file=sys.stderr)
        return 1
    for policy, cell in report["policies"].items():
        if cell["latency_p99"] is None:
            print(f"FAIL: {policy} produced no latency percentiles",
                  file=sys.stderr)
            return 1
    if wall > args.guard_seconds:
        print(f"FAIL: wall clock {wall:.1f}s exceeded guard "
              f"{args.guard_seconds:.0f}s", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
