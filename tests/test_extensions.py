"""Tests for the extension features: UNION ALL, EXPLAIN, DAG mode,
overlap ablation switch."""

import pytest

from repro import connect
from repro.common.config import Configuration
from repro.common.errors import SemanticError
from repro.engines.base import compare_result_rows
from repro.sql import ast, parse_statement


class TestUnionParsing:
    def test_union_all_parsed(self):
        stmt = parse_statement("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert isinstance(stmt, ast.UnionAll)
        assert len(stmt.branches) == 2

    def test_three_branches(self):
        stmt = parse_statement(
            "SELECT a FROM t UNION ALL SELECT a FROM u UNION ALL SELECT a FROM v"
        )
        assert len(stmt.branches) == 3

    def test_union_in_subquery(self):
        stmt = parse_statement(
            "SELECT x FROM (SELECT a x FROM t UNION ALL SELECT b x FROM u) s"
        )
        assert isinstance(stmt.source.query, ast.UnionAll)

    def test_plain_union_rejected(self):
        from repro.common.errors import ParseError

        with pytest.raises(ParseError):
            parse_statement("SELECT a FROM t UNION SELECT a FROM u")


class TestUnionExecution:
    def test_union_rows(self, local_session):
        rows = local_session.query(
            "SELECT name FROM emp WHERE dept = 'hr' "
            "UNION ALL SELECT name FROM emp WHERE dept = 'ops'"
        ).rows
        assert sorted(rows) == [("cat",), ("dan",), ("eve",)]

    def test_union_keeps_duplicates(self, local_session):
        rows = local_session.query(
            "SELECT dept FROM emp WHERE emp_id = 1 "
            "UNION ALL SELECT dept FROM emp WHERE emp_id = 2"
        ).rows
        assert rows == [("eng",), ("eng",)]

    def test_union_feeding_aggregate(self, local_session):
        rows = local_session.query(
            "SELECT d, count(*) FROM ("
            "  SELECT dept d FROM emp UNION ALL SELECT dept d FROM dept"
            ") u GROUP BY d ORDER BY d"
        ).rows
        assert ("eng", 4) in rows  # 3 employees + 1 dept row

    def test_arity_mismatch_rejected(self, local_session):
        with pytest.raises(SemanticError):
            local_session.query(
                "SELECT name FROM emp UNION ALL SELECT name, salary FROM emp"
            )

    def test_union_cross_engine(self, warehouse):
        hdfs, metastore = warehouse
        sql = (
            "SELECT d, sum(c) FROM ("
            "  SELECT dept d, 1 c FROM emp UNION ALL SELECT dept d, 10 c FROM emp"
            ") u GROUP BY d ORDER BY d"
        )
        rows = {}
        for engine in ("local", "hadoop", "datampi"):
            session = connect(engine=engine, hdfs=hdfs, metastore=metastore)
            rows[engine] = session.query(sql).rows
        assert compare_result_rows(rows["local"], rows["hadoop"], ordered=True)
        assert compare_result_rows(rows["local"], rows["datampi"], ordered=True)


class TestExplain:
    def test_explain_select(self, local_session):
        result = local_session.execute(
            "EXPLAIN SELECT dept, count(*) FROM emp GROUP BY dept"
        )[0]
        assert result.statement == "explain"
        text = "\n".join(row[0] for row in result.rows)
        assert "job" in text and "ReduceSink" in text

    def test_explain_does_not_execute(self, local_session):
        hdfs = local_session.hdfs
        before = set(hdfs._files)
        local_session.execute("EXPLAIN SELECT name FROM emp")
        assert set(hdfs._files) == before

    def test_explain_ctas(self, local_session):
        result = local_session.execute(
            "EXPLAIN CREATE TABLE t2 AS SELECT name FROM emp"
        )[0]
        assert not local_session.metastore.has_table("t2")
        assert result.plan is not None

    def test_explain_insert(self, local_session):
        local_session.execute("CREATE TABLE sink (a string)")
        result = local_session.execute(
            "EXPLAIN INSERT OVERWRITE TABLE sink SELECT name FROM emp"
        )[0]
        assert result.plan.output_location == "/warehouse/sink"

    def test_explain_drop_rejected(self, local_session):
        with pytest.raises(SemanticError):
            local_session.execute("EXPLAIN DROP TABLE emp")


class TestDagMode:
    def _group_sql(self):
        return (
            "SELECT grp, sum(val) s FROM facts GROUP BY grp ORDER BY s DESC LIMIT 5"
        )

    def test_dag_faster_and_correct(self, big_warehouse):
        hdfs, metastore = big_warehouse
        plain = connect(engine="datampi", hdfs=hdfs, metastore=metastore)
        expected = plain.query(self._group_sql())
        conf = Configuration({"hive.datampi.dag": "true"})
        dag = connect(engine="datampi", hdfs=hdfs, metastore=metastore, conf=conf)
        actual = dag.query(self._group_sql())
        assert compare_result_rows(expected.rows, actual.rows, ordered=True)
        assert actual.execution.total_seconds < expected.execution.total_seconds

    def test_dag_skips_respawn_on_pipelined_stage(self, big_warehouse):
        hdfs, metastore = big_warehouse
        conf = Configuration({"hive.datampi.dag": "true"})
        session = connect(engine="datampi", hdfs=hdfs, metastore=metastore, conf=conf)
        result = session.query(self._group_sql())
        jobs = result.execution.jobs
        assert len(jobs) == 2
        # the pipelined second stage starts without the mpidrun+launch pause
        assert jobs[1].startup < jobs[0].startup

    def test_dag_off_by_default(self, big_warehouse):
        hdfs, metastore = big_warehouse
        session = connect(engine="datampi", hdfs=hdfs, metastore=metastore)
        result = session.query(self._group_sql())
        jobs = result.execution.jobs
        assert jobs[1].startup >= 2.0  # full respawn


class TestOverlapSwitch:
    def test_overlap_off_not_faster(self, big_warehouse):
        hdfs, metastore = big_warehouse
        sql = "SELECT k, grp, val FROM facts ORDER BY val DESC LIMIT 3"
        on = connect(engine="datampi", hdfs=hdfs, metastore=metastore)
        off_conf = Configuration({"datampi.shuffle.overlap": "false"})
        off = connect(engine="datampi", hdfs=hdfs, metastore=metastore, conf=off_conf)
        on_result = on.query(sql)
        off_result = off.query(sql)
        assert compare_result_rows(on_result.rows, off_result.rows, ordered=True)
        assert off_result.execution.total_seconds >= on_result.execution.total_seconds - 1e-6
