"""TPC-H data generator (dbgen 2.17 equivalent, sampled).

Generates all eight tables with consistent foreign keys and the value
distributions the 22 queries depend on (date ranges, brands/types/
containers, Zipf-free uniform keys per spec, comment keywords for
Q13/Q16 at their spec rates).  Row counts are the spec counts times a
sampling factor chosen so ``lineitem`` has ``lineitem_sample`` rows;
every file's ``scale`` lifts byte accounting to Table I logical sizes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.units import GB, KB, MB
from repro.sql.functions import date_add_days
from repro.storage.formats.base import get_format
from repro.storage.hdfs import HDFS
from repro.storage.metastore import Metastore
from repro.workloads.tpch.schema import (
    CONTAINERS_1,
    CONTAINERS_2,
    COLORS,
    NATIONS,
    NOISE_WORDS,
    PRIORITIES,
    REGIONS,
    SEGMENTS,
    SHIP_INSTRUCT,
    SHIP_MODES,
    TPCH_SCHEMAS,
    TYPES_1,
    TYPES_2,
    TYPES_3,
)

#: Table I logical text bytes per scale-factor GB.
BYTES_PER_SF = {
    "customer": 23.4 * MB,
    "lineitem": 0.73 * GB,
    "orders": 0.17 * GB,
    "partsupp": 0.115 * GB,
    "part": 23.3 * MB,
    "supplier": 1.4 * MB,
}
FIXED_BYTES = {"nation": 4 * KB, "region": 4 * KB}

_START = "1992-01-01"
_CURRENT = "1995-06-17"  # spec CURRENTDATE used for returnflag/linestatus


@dataclass
class TpchInfo:
    sf: float
    row_counts: Dict[str, int] = field(default_factory=dict)
    logical_bytes: Dict[str, float] = field(default_factory=dict)

    @property
    def total_logical_bytes(self) -> float:
        return sum(self.logical_bytes.values())


def _comment(rng: random.Random, words: int) -> str:
    return " ".join(rng.choice(NOISE_WORDS) for _ in range(words))


def _phone(rng: random.Random, nationkey: int) -> str:
    return (
        f"{10 + nationkey}-{rng.randint(100, 999)}-"
        f"{rng.randint(100, 999)}-{rng.randint(1000, 9999)}"
    )


def _date_between(rng: random.Random, lo_days: int, hi_days: int) -> str:
    return date_add_days(_START, rng.randint(lo_days, hi_days))


def load_tpch(
    hdfs: HDFS,
    metastore: Metastore,
    sf: float,
    lineitem_sample: int = 24000,
    seed: int = 19920101,
    format_name: str = "text",
) -> TpchInfo:
    """Generate and register all eight TPC-H tables.

    The byte-accounting ``scale`` is computed against the *text*
    encoding, so switching ``format_name`` to ``"orc"`` yields smaller
    logical files exactly in proportion to the real compression achieved
    on the sampled rows — the mechanism behind Table II's Text-vs-ORC
    comparison.
    """
    rng = random.Random(seed)
    factor = lineitem_sample / (6_000_000 * sf)

    num_supplier = max(10, round(10_000 * sf * factor))
    num_customer = max(30, round(150_000 * sf * factor))
    num_part = max(25, round(200_000 * sf * factor))
    num_orders = max(50, round(1_500_000 * sf * factor))

    info = TpchInfo(sf=sf)

    region_rows = [(i, name, _comment(rng, 6)) for i, name in enumerate(REGIONS)]
    nation_rows = [
        (key, name, regionkey, _comment(rng, 6)) for key, name, regionkey in NATIONS
    ]

    supplier_rows = []
    for key in range(1, num_supplier + 1):
        nationkey = rng.randrange(25)
        # spec: 5 per 10,000 suppliers carry "Customer ... Complaints";
        # guarantee a couple in small samples so Q16 selects something
        if key % max(2, num_supplier // 3) == 1 and rng.random() < 0.25:
            comment = "carefully Customer silent Complaints sleep"
        else:
            comment = _comment(rng, 8)
        supplier_rows.append(
            (
                key,
                f"Supplier#{key:09d}",
                _comment(rng, 3),
                nationkey,
                _phone(rng, nationkey),
                round(rng.uniform(-999.99, 9999.99), 2),
                comment,
            )
        )

    customer_rows = []
    for key in range(1, num_customer + 1):
        nationkey = rng.randrange(25)
        customer_rows.append(
            (
                key,
                f"Customer#{key:09d}",
                _comment(rng, 3),
                nationkey,
                _phone(rng, nationkey),
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(SEGMENTS),
                _comment(rng, 10),
            )
        )

    part_rows = []
    retail_price: Dict[int, float] = {}
    for key in range(1, num_part + 1):
        price = round(
            (90000 + (key % 200001) / 10.0 + 100 * (key % 1000)) / 100.0, 2
        )  # spec retail price formula
        retail_price[key] = price
        part_rows.append(
            (
                key,
                " ".join(rng.sample(COLORS, 5)),
                f"Manufacturer#{1 + key % 5}",
                f"Brand#{1 + key % 5}{1 + (key // 5) % 5}",
                f"{rng.choice(TYPES_1)} {rng.choice(TYPES_2)} {rng.choice(TYPES_3)}",
                rng.randint(1, 50),
                f"{rng.choice(CONTAINERS_1)} {rng.choice(CONTAINERS_2)}",
                price,
                _comment(rng, 5),
            )
        )

    partsupp_rows = []
    suppliers_of_part: Dict[int, List[int]] = {}
    for key in range(1, num_part + 1):
        chosen = [1 + (key + i * max(1, num_supplier // 4)) % num_supplier for i in range(4)]
        suppliers_of_part[key] = chosen
        for suppkey in chosen:
            partsupp_rows.append(
                (
                    key,
                    suppkey,
                    rng.randint(1, 9999),
                    round(rng.uniform(1.0, 1000.0), 2),
                    _comment(rng, 12),
                )
            )

    orders_rows = []
    lineitem_rows = []
    # spec: orders reference only two thirds of customers
    eligible_customers = [key for key in range(1, num_customer + 1) if key % 3 != 0]
    for orderkey in range(1, num_orders + 1):
        custkey = rng.choice(eligible_customers)
        orderdate = _date_between(rng, 0, 2405 - 151)  # 1992-01-01 .. 1998-08-02
        lines = rng.randint(1, 7)
        statuses = []
        total = 0.0
        for line_number in range(1, lines + 1):
            partkey = rng.randint(1, num_part)
            suppkey = rng.choice(suppliers_of_part[partkey])
            quantity = float(rng.randint(1, 50))
            extended = round(quantity * retail_price[partkey], 2)
            discount = round(rng.uniform(0.0, 0.10), 2)
            tax = round(rng.uniform(0.0, 0.08), 2)
            shipdate = date_add_days(orderdate, rng.randint(1, 121))
            commitdate = date_add_days(orderdate, rng.randint(30, 90))
            receiptdate = date_add_days(shipdate, rng.randint(1, 30))
            if receiptdate <= _CURRENT:
                returnflag = rng.choice(["R", "A"])
            else:
                returnflag = "N"
            linestatus = "O" if shipdate > _CURRENT else "F"
            statuses.append(linestatus)
            total += extended * (1 + tax) * (1 - discount)
            lineitem_rows.append(
                (
                    orderkey, partkey, suppkey, line_number, quantity,
                    extended, discount, tax, returnflag, linestatus,
                    shipdate, commitdate, receiptdate,
                    rng.choice(SHIP_INSTRUCT), rng.choice(SHIP_MODES),
                    _comment(rng, 4),
                )
            )
        if all(status == "F" for status in statuses):
            orderstatus = "F"
        elif all(status == "O" for status in statuses):
            orderstatus = "O"
        else:
            orderstatus = "P"
        # Q13 pattern: a small share of comments contain special...requests
        if rng.random() < 0.01:
            comment = "the special pending requests haggle blithely"
        else:
            comment = _comment(rng, 8)
        orders_rows.append(
            (
                orderkey, custkey, orderstatus, round(total, 2), orderdate,
                rng.choice(PRIORITIES), f"Clerk#{rng.randint(1, 1000):09d}",
                0, comment,
            )
        )

    tables: List[Tuple[str, list]] = [
        ("region", region_rows),
        ("nation", nation_rows),
        ("supplier", supplier_rows),
        ("customer", customer_rows),
        ("part", part_rows),
        ("partsupp", partsupp_rows),
        ("orders", orders_rows),
        ("lineitem", lineitem_rows),
    ]
    for name, rows in tables:
        schema = TPCH_SCHEMAS[name]
        logical = FIXED_BYTES.get(name) or BYTES_PER_SF[name] * sf
        text_actual = get_format("text").build(schema, rows).total_bytes
        scale = logical / max(1, text_actual)
        if metastore.has_table(name):
            metastore.drop_table(name)
        table = metastore.create_table(name, schema, format_name=format_name)
        parts = max(1, min(8, int(logical / (512 * MB)) + 1))
        chunk = (len(rows) + parts - 1) // parts
        written = 0.0
        for part in range(parts):
            piece = rows[part * chunk : (part + 1) * chunk]
            data_file = hdfs.write(
                f"{table.location}/part-{part:05d}", schema, piece,
                format_name=format_name, scale=scale, writer_node=part,
            )
            written += data_file.logical_bytes
        info.row_counts[name] = len(rows)
        info.logical_bytes[name] = written
    return info
