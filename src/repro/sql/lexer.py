"""Tokenizer for the HiveQL subset.

Hand-rolled single-pass scanner producing a flat token list; tracks
line/column for error messages.  Keywords are case-insensitive;
identifiers keep their original spelling but compare lowercased.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.common.errors import ParseError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "limit",
    "as", "and", "or", "not", "in", "like", "between", "is", "null",
    "case", "when", "then", "else", "end", "cast", "distinct",
    "join", "inner", "left", "right", "full", "outer", "on", "cross",
    "create", "table", "drop", "insert", "overwrite", "into", "if",
    "exists", "stored", "set", "asc", "desc", "union", "all", "true",
    "false", "interval", "explain", "partitioned", "partition",
    "analyze", "compute", "statistics",
}

_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "%", "||")
_PUNCT = "(),."


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str  # keywords/identifiers lowercased except IDENT keeps .raw
    raw: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text in names

    def __str__(self) -> str:
        return self.raw if self.type is not TokenType.EOF else "<eof>"


class Lexer:
    """Scan HiveQL text into tokens (skips whitespace and ``--`` comments)."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.text):
                tokens.append(Token(TokenType.EOF, "", "", self.line, self.column))
                return tokens
            tokens.append(self._next_token())

    # -- internals --------------------------------------------------------------
    def _peek(self, ahead: int = 0) -> str:
        index = self.pos + ahead
        return self.text[index] if index < len(self.text) else ""

    def _advance(self, count: int = 1) -> str:
        piece = self.text[self.pos : self.pos + count]
        for char in piece:
            if char == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return piece

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "-" and self._peek(1) == "-":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.text) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.text):
                    raise ParseError("unterminated comment", self.line, self.column)
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        char = self._peek()

        if char.isalpha() or char == "_":
            raw = self._read_while(lambda c: c.isalnum() or c == "_")
            lowered = raw.lower()
            kind = TokenType.KEYWORD if lowered in KEYWORDS else TokenType.IDENT
            return Token(kind, lowered, raw, line, column)

        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            raw = self._read_while(lambda c: c.isdigit())
            if self._peek() == "." and self._peek(1).isdigit():
                raw += self._advance()
                raw += self._read_while(lambda c: c.isdigit())
            if self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                raw += self._advance()
                if self._peek() in "+-":
                    raw += self._advance()
                raw += self._read_while(lambda c: c.isdigit())
            return Token(TokenType.NUMBER, raw, raw, line, column)

        if char in "'\"":
            quote = self._advance()
            chunks: List[str] = []
            while True:
                if self.pos >= len(self.text):
                    raise ParseError("unterminated string literal", line, column)
                piece = self._advance()
                if piece == "\\" and self.pos < len(self.text):
                    escaped = self._advance()
                    chunks.append({"n": "\n", "t": "\t"}.get(escaped, escaped))
                elif piece == quote:
                    if self._peek() == quote:  # doubled quote escapes itself
                        chunks.append(self._advance())
                    else:
                        break
                else:
                    chunks.append(piece)
            value = "".join(chunks)
            return Token(TokenType.STRING, value, value, line, column)

        if char == "`":
            self._advance()
            raw = self._read_while(lambda c: c != "`")
            if self._peek() != "`":
                raise ParseError("unterminated backtick identifier", line, column)
            self._advance()
            return Token(TokenType.IDENT, raw.lower(), raw, line, column)

        for operator in _OPERATORS:
            if self.text.startswith(operator, self.pos):
                self._advance(len(operator))
                return Token(TokenType.OPERATOR, operator, operator, line, column)

        if char in _PUNCT:
            self._advance()
            return Token(TokenType.PUNCT, char, char, line, column)

        if char == ";":
            self._advance()
            return Token(TokenType.PUNCT, ";", ";", line, column)

        raise ParseError(f"unexpected character {char!r}", line, column)

    def _read_while(self, predicate) -> str:
        start = self.pos
        while self.pos < len(self.text) and predicate(self._peek()):
            self._advance()
        return self.text[start : self.pos]
