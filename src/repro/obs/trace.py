"""Structured spans over *simulated* time.

A :class:`Span` is one named interval — ``query``, ``compile``, ``job``,
``task``, ``shuffle``, ``spill`` — with attributes, instant events and
child spans.  Times are **simulated seconds from query start**, never
wall-clock: the engines stamp them from the discrete-event clock, the
driver stamps the modeled compile section, and the exporters
(:mod:`repro.obs.export`) turn the tree into Chrome-trace JSON or flat
CSV/JSON rows.

Two usage styles coexist because engine tasks are interleaved
coroutines:

* **explicit-parent** (concurrency-safe) — ``parent.start_child(...)``
  then ``span.finish(end)``; used everywhere inside the simulator where
  many tasks are open at once;
* **stack-based** (sequential convenience) — ``with tracer.span(...):``
  for straight-line code like the driver.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


class SpanEvent:
    """An instant occurrence inside a span (a send, a spill, a wave)."""

    __slots__ = ("name", "time", "attributes")

    def __init__(self, name: str, time: float, attributes: Optional[Dict] = None):
        self.name = name
        self.time = time
        self.attributes = attributes or {}

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "time": self.time, "attributes": dict(self.attributes)}

    def __repr__(self) -> str:
        return f"SpanEvent({self.name!r} @ {self.time:.3f})"


class Span:
    """One named, attributed interval of simulated time.

    ``end`` is ``None`` while the span is open; :meth:`finish` closes it
    (idempotent — re-finishing moves the end, which lets engines extend
    a span when late work lands in it).
    """

    __slots__ = ("name", "category", "start", "end", "attributes", "children", "events")

    def __init__(
        self,
        name: str,
        start: float = 0.0,
        category: Optional[str] = None,
        attributes: Optional[Dict] = None,
    ):
        self.name = name
        self.category = category or name
        self.start = float(start)
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.children: List["Span"] = []
        self.events: List[SpanEvent] = []

    # -- lifecycle ----------------------------------------------------------
    def start_child(self, name: str, start: float, category: Optional[str] = None,
                    **attributes) -> "Span":
        """Open a child span at *start* (explicit-parent style)."""
        child = Span(name, start=start, category=category, attributes=attributes)
        self.children.append(child)
        return child

    def adopt(self, child: "Span") -> "Span":
        """Attach an already-built span subtree (the driver adopts the
        engine's job spans under the query span)."""
        self.children.append(child)
        return child

    def finish(self, end: float, **attributes) -> "Span":
        self.end = float(end)
        if attributes:
            self.attributes.update(attributes)
        return self

    def add_event(self, name: str, time: float, **attributes) -> SpanEvent:
        event = SpanEvent(name, time, attributes)
        self.events.append(event)
        return event

    # -- geometry -----------------------------------------------------------
    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None

    def shift(self, delta: float) -> "Span":
        """Translate this subtree in time (the driver shifts engine spans
        past the compile section)."""
        self.start += delta
        if self.end is not None:
            self.end += delta
        for event in self.events:
            event.time += delta
        for child in self.children:
            child.shift(delta)
        return self

    # -- traversal ----------------------------------------------------------
    def walk(self, depth: int = 0) -> Iterator[Tuple["Span", int]]:
        """Yield (span, depth) over the subtree, pre-order."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, category: str) -> Optional["Span"]:
        """First descendant (or self) with the given category."""
        for span, _depth in self.walk():
            if span.category == category:
                return span
        return None

    def find_all(self, category: str) -> List["Span"]:
        return [span for span, _depth in self.walk() if span.category == category]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "attributes": dict(self.attributes),
            "events": [event.to_dict() for event in self.events],
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        end = f"{self.end:.3f}" if self.end is not None else "open"
        return f"Span({self.category}:{self.name!r} [{self.start:.3f}, {end}])"


class Tracer:
    """Builds span trees against a pluggable clock.

    The clock returns *simulated seconds*; each engine installs
    ``lambda: sim.now`` at ``run_plan`` time, the driver uses explicit
    timestamps.  Roots accumulate in :attr:`roots` (the engines' job
    spans, or the driver's query span).
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock: Callable[[], float] = clock or (lambda: 0.0)
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -- clock --------------------------------------------------------------
    def set_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def now(self) -> float:
        return self._clock()

    # -- explicit API (concurrency-safe) -------------------------------------
    def start(self, name: str, parent: Optional[Span] = None,
              start: Optional[float] = None, category: Optional[str] = None,
              **attributes) -> Span:
        at = self.now() if start is None else start
        if parent is not None:
            return parent.start_child(name, at, category=category, **attributes)
        span = Span(name, start=at, category=category, attributes=attributes)
        self.roots.append(span)
        return span

    def finish(self, span: Span, end: Optional[float] = None, **attributes) -> Span:
        return span.finish(self.now() if end is None else end, **attributes)

    # -- stack API (sequential convenience) -----------------------------------
    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, category: Optional[str] = None, **attributes):
        opened = self.start(name, parent=self.current, category=category, **attributes)
        self._stack.append(opened)
        try:
            yield opened
        finally:
            self._stack.pop()
            if not opened.closed:
                opened.finish(self.now())

    def clear(self) -> None:
        self.roots = []
        self._stack = []
