"""Bound expressions: index-resolved, NULL-aware, compiled to closures.

The analyzer turns parser AST (names) into these nodes (row positions);
``compile_expression`` then produces a plain ``row -> value`` closure so
the per-row hot path has no interpretive dispatch.

Semantics follow Hive:

* three-valued logic — comparisons with NULL yield NULL; ``AND``/``OR``
  propagate unknowns; filters keep a row only when the predicate is
  exactly TRUE;
* ``int / int`` is double division; ``%`` keeps integer semantics;
* ``LIKE`` supports ``%`` and ``_``.
"""

from __future__ import annotations

import operator
import re
import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.common.errors import ExecutionError, SemanticError
from repro.common.kv import (
    _F64,
    _I64,
    _U16,
    KeyValue,
    fields_size,
    serialize_fields,
)
from repro.common.rows import DataType
from repro.sql.functions import ScalarFunction

Row = Tuple[object, ...]
Evaluator = Callable[[Row], object]


class BoundExpression:
    """Base class; every node knows its result type."""

    dtype: DataType = DataType.STRING

    def compile(self) -> Evaluator:
        raise NotImplementedError


@dataclass
class InputRef(BoundExpression):
    index: int
    dtype: DataType = DataType.STRING

    def compile(self) -> Evaluator:
        index = self.index
        return lambda row: row[index]


@dataclass
class Const(BoundExpression):
    value: object
    dtype: DataType = DataType.STRING

    def compile(self) -> Evaluator:
        value = self.value
        return lambda row: value


@dataclass
class Arithmetic(BoundExpression):
    op: str
    left: BoundExpression
    right: BoundExpression
    dtype: DataType = DataType.DOUBLE

    def compile(self) -> Evaluator:
        left, right = self.left.compile(), self.right.compile()
        op = self.op

        if op == "+":
            def evaluate(row):
                a, b = left(row), right(row)
                return None if a is None or b is None else a + b
        elif op == "-":
            def evaluate(row):
                a, b = left(row), right(row)
                return None if a is None or b is None else a - b
        elif op == "*":
            def evaluate(row):
                a, b = left(row), right(row)
                return None if a is None or b is None else a * b
        elif op == "/":
            def evaluate(row):
                a, b = left(row), right(row)
                if a is None or b is None or b == 0:
                    return None  # Hive yields NULL on division by zero
                return a / b
        elif op == "%":
            def evaluate(row):
                a, b = left(row), right(row)
                if a is None or b is None or b == 0:
                    return None
                return a % b
        else:
            raise ExecutionError(f"unknown arithmetic op {op!r}")
        return evaluate


@dataclass
class Comparison(BoundExpression):
    op: str  # '=', '<>', '<', '<=', '>', '>='
    left: BoundExpression
    right: BoundExpression
    dtype: DataType = DataType.BOOLEAN

    def compile(self) -> Evaluator:
        left, right = self.left.compile(), self.right.compile()
        op = self.op
        if op == "=":
            compare = lambda a, b: a == b
        elif op == "<>":
            compare = lambda a, b: a != b
        elif op == "<":
            compare = lambda a, b: a < b
        elif op == "<=":
            compare = lambda a, b: a <= b
        elif op == ">":
            compare = lambda a, b: a > b
        elif op == ">=":
            compare = lambda a, b: a >= b
        else:
            raise ExecutionError(f"unknown comparison {op!r}")

        def evaluate(row):
            a, b = left(row), right(row)
            if a is None or b is None:
                return None
            return compare(a, b)

        return evaluate


@dataclass
class LogicalAnd(BoundExpression):
    operands: List[BoundExpression] = field(default_factory=list)
    dtype: DataType = DataType.BOOLEAN

    def compile(self) -> Evaluator:
        compiled = [operand.compile() for operand in self.operands]

        def evaluate(row):
            saw_null = False
            for evaluator in compiled:
                value = evaluator(row)
                if value is None:
                    saw_null = True
                elif not value:
                    return False
            return None if saw_null else True

        return evaluate


@dataclass
class LogicalOr(BoundExpression):
    operands: List[BoundExpression] = field(default_factory=list)
    dtype: DataType = DataType.BOOLEAN

    def compile(self) -> Evaluator:
        compiled = [operand.compile() for operand in self.operands]

        def evaluate(row):
            saw_null = False
            for evaluator in compiled:
                value = evaluator(row)
                if value is None:
                    saw_null = True
                elif value:
                    return True
            return None if saw_null else False

        return evaluate


@dataclass
class LogicalNot(BoundExpression):
    operand: BoundExpression = None
    dtype: DataType = DataType.BOOLEAN

    def compile(self) -> Evaluator:
        inner = self.operand.compile()

        def evaluate(row):
            value = inner(row)
            return None if value is None else not value

        return evaluate


@dataclass
class ScalarCall(BoundExpression):
    function: ScalarFunction = None
    args: List[BoundExpression] = field(default_factory=list)
    dtype: DataType = DataType.STRING

    def compile(self) -> Evaluator:
        impl = self.function.impl
        compiled = [arg.compile() for arg in self.args]
        if len(compiled) == 1:
            only = compiled[0]
            return lambda row: impl(only(row))
        if len(compiled) == 2:
            first, second = compiled
            return lambda row: impl(first(row), second(row))
        return lambda row: impl(*[evaluator(row) for evaluator in compiled])


@dataclass
class CaseExpr(BoundExpression):
    branches: List[Tuple[BoundExpression, BoundExpression]] = field(default_factory=list)
    else_value: Optional[BoundExpression] = None
    dtype: DataType = DataType.STRING

    def compile(self) -> Evaluator:
        compiled = [(cond.compile(), value.compile()) for cond, value in self.branches]
        otherwise = self.else_value.compile() if self.else_value else (lambda row: None)

        def evaluate(row):
            for condition, value in compiled:
                if condition(row):
                    return value(row)
            return otherwise(row)

        return evaluate


@dataclass
class LikeExpr(BoundExpression):
    operand: BoundExpression = None
    pattern: str = ""
    negated: bool = False
    dtype: DataType = DataType.BOOLEAN

    def compile(self) -> Evaluator:
        regex = re.compile(_like_to_regex(self.pattern), re.DOTALL)
        inner = self.operand.compile()
        negated = self.negated

        def evaluate(row):
            value = inner(row)
            if value is None:
                return None
            matched = regex.fullmatch(str(value)) is not None
            return not matched if negated else matched

        return evaluate


@dataclass
class InSet(BoundExpression):
    """Membership test against a literal set (the common TPC-H shape)."""

    operand: BoundExpression = None
    values: frozenset = frozenset()
    negated: bool = False
    dtype: DataType = DataType.BOOLEAN

    def compile(self) -> Evaluator:
        inner = self.operand.compile()
        values = self.values
        negated = self.negated

        def evaluate(row):
            value = inner(row)
            if value is None:
                return None
            contained = value in values
            return not contained if negated else contained

        return evaluate


@dataclass
class IsNullExpr(BoundExpression):
    operand: BoundExpression = None
    negated: bool = False
    dtype: DataType = DataType.BOOLEAN

    def compile(self) -> Evaluator:
        inner = self.operand.compile()
        negated = self.negated
        if negated:
            return lambda row: inner(row) is not None
        return lambda row: inner(row) is None


@dataclass
class CastExpr(BoundExpression):
    operand: BoundExpression = None
    dtype: DataType = DataType.STRING

    def compile(self) -> Evaluator:
        inner = self.operand.compile()
        target = self.dtype

        def evaluate(row):
            value = inner(row)
            if value is None:
                return None
            try:
                if target in (DataType.INT, DataType.BIGINT):
                    return int(float(value))
                if target is DataType.DOUBLE:
                    return float(value)
                if target is DataType.BOOLEAN:
                    return bool(value)
                return str(value)
            except (TypeError, ValueError):
                return None  # Hive casts malformed values to NULL

        return evaluate


def _like_to_regex(pattern: str) -> str:
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return "".join(out)


class _CodegenUnsupported(Exception):
    """Raised while emitting source for a node codegen can't express."""


_ARITH_TEMPLATES = {
    "+": "{n} = None if {a} is None or {b} is None else {a} + {b}",
    "-": "{n} = None if {a} is None or {b} is None else {a} - {b}",
    "*": "{n} = None if {a} is None or {b} is None else {a} * {b}",
    "/": "{n} = None if {a} is None or {b} is None or {b} == 0 else {a} / {b}",
    "%": "{n} = None if {a} is None or {b} is None or {b} == 0 else {a} % {b}",
}

_COMPARE_OPS = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


def _cast_callable(target: DataType) -> Callable[[object], object]:
    """Value-level CAST (same semantics as :meth:`CastExpr.compile`)."""
    def cast(value):
        if value is None:
            return None
        try:
            if target in (DataType.INT, DataType.BIGINT):
                return int(float(value))
            if target is DataType.DOUBLE:
                return float(value)
            if target is DataType.BOOLEAN:
                return bool(value)
            return str(value)
        except (TypeError, ValueError):
            return None  # Hive casts malformed values to NULL
    return cast


def _emit(expression: BoundExpression, lines: List[str], env: dict,
          counter: List[int], indent: str = "    ",
          ref: Optional[Callable[[int], str]] = None) -> str:
    """Append statements evaluating *expression*; returns a cheap atom
    (a temp name, an input reference or a bound constant) holding its
    value.  *ref* renders an :class:`InputRef` atom — the default is the
    row form ``row[i]``; the column kernels pass ``col{i}[i]`` so the
    same emitter serves both execution modes."""
    kind = type(expression)
    if kind is InputRef:
        if ref is not None:
            return ref(expression.index)
        return f"row[{expression.index}]"
    if kind is Const:
        name = f"c{len(env)}"
        env[name] = expression.value
        return name
    if kind is Arithmetic:
        template = _ARITH_TEMPLATES.get(expression.op)
        if template is None:
            raise _CodegenUnsupported
        a = _emit(expression.left, lines, env, counter, indent, ref)
        b = _emit(expression.right, lines, env, counter, indent, ref)
        name = f"v{counter[0]}"
        counter[0] += 1
        lines.append(indent + template.format(n=name, a=a, b=b))
        return name
    if kind is Comparison:
        pyop = _COMPARE_OPS.get(expression.op)
        if pyop is None:
            raise _CodegenUnsupported
        a = _emit(expression.left, lines, env, counter, indent, ref)
        b = _emit(expression.right, lines, env, counter, indent, ref)
        name = f"v{counter[0]}"
        counter[0] += 1
        lines.append(
            f"{indent}{name} = None if {a} is None or {b} is None "
            f"else {a} {pyop} {b}"
        )
        return name
    if kind is ScalarCall:
        args = [
            _emit(arg, lines, env, counter, indent, ref)
            for arg in expression.args
        ]
        impl_name = f"f{len(env)}"
        env[impl_name] = expression.function.impl
        name = f"v{counter[0]}"
        counter[0] += 1
        lines.append(f"{indent}{name} = {impl_name}({', '.join(args)})")
        return name
    if kind is IsNullExpr:
        atom = _emit(expression.operand, lines, env, counter, indent, ref)
        name = f"v{counter[0]}"
        counter[0] += 1
        test = "is not None" if expression.negated else "is None"
        lines.append(f"{indent}{name} = {atom} {test}")
        return name
    if kind is InSet:
        atom = _emit(expression.operand, lines, env, counter, indent, ref)
        set_name = f"c{len(env)}"
        env[set_name] = expression.values
        name = f"v{counter[0]}"
        counter[0] += 1
        membership = "not in" if expression.negated else "in"
        lines.append(
            f"{indent}{name} = None if {atom} is None "
            f"else {atom} {membership} {set_name}"
        )
        return name
    if kind is LikeExpr:
        atom = _emit(expression.operand, lines, env, counter, indent, ref)
        match_name = f"f{len(env)}"
        env[match_name] = re.compile(
            _like_to_regex(expression.pattern), re.DOTALL
        ).fullmatch
        name = f"v{counter[0]}"
        counter[0] += 1
        test = "is None" if expression.negated else "is not None"
        lines.append(
            f"{indent}{name} = None if {atom} is None "
            f"else {match_name}(str({atom})) {test}"
        )
        return name
    if kind is CastExpr:
        atom = _emit(expression.operand, lines, env, counter, indent, ref)
        cast_name = f"f{len(env)}"
        env[cast_name] = _cast_callable(expression.dtype)
        name = f"v{counter[0]}"
        counter[0] += 1
        lines.append(f"{indent}{name} = {cast_name}({atom})")
        return name
    if kind is CaseExpr:
        name = f"v{counter[0]}"
        counter[0] += 1

        def emit_branches(branches, level: str) -> None:
            if not branches:
                if expression.else_value is not None:
                    atom = _emit(
                        expression.else_value, lines, env, counter, level, ref
                    )
                    lines.append(f"{level}{name} = {atom}")
                else:
                    lines.append(f"{level}{name} = None")
                return
            condition, value = branches[0]
            cond_atom = _emit(condition, lines, env, counter, level, ref)
            lines.append(f"{level}if {cond_atom}:")
            value_atom = _emit(value, lines, env, counter, level + "    ", ref)
            lines.append(f"{level}    {name} = {value_atom}")
            lines.append(f"{level}else:")
            emit_branches(branches[1:], level + "    ")

        emit_branches(list(expression.branches), indent)
        return name
    if kind is LogicalNot:
        atom = _emit(expression.operand, lines, env, counter, indent, ref)
        name = f"v{counter[0]}"
        counter[0] += 1
        lines.append(f"{indent}{name} = None if {atom} is None else not {atom}")
        return name
    if kind is LogicalAnd or kind is LogicalOr:
        return _emit_logical(
            expression.operands, kind is LogicalAnd, lines, env, counter,
            indent, ref,
        )
    raise _CodegenUnsupported


def _emit_logical(operands: List[BoundExpression], is_and: bool,
                  lines: List[str], env: dict, counter: List[int],
                  indent: str, ref: Optional[Callable[[int], str]] = None) -> str:
    """Three-valued AND/OR with the closure compiler's exact short-circuit:
    stop at the first definitive operand (falsy for AND, truthy for OR),
    otherwise remember NULLs and keep going.  Later operands nest inside
    the continue-branch so they are only evaluated when reached."""
    if not operands:
        raise _CodegenUnsupported
    result = f"v{counter[0]}"
    saw_null = f"v{counter[0] + 1}"
    counter[0] += 2
    lines.append(f"{indent}{saw_null} = False")
    definitive = "False" if is_and else "True"
    exhausted = "True" if is_and else "False"

    def emit_rest(rest: List[BoundExpression], level: str) -> None:
        if not rest:
            lines.append(
                f"{level}{result} = None if {saw_null} else {exhausted}"
            )
            return
        atom = _emit(rest[0], lines, env, counter, level, ref)
        lines.append(f"{level}if {atom} is None:")
        lines.append(f"{level}    {saw_null} = True")
        # continue past NULLs and non-definitive values
        if is_and:
            lines.append(f"{level}if {atom} is None or {atom}:")
        else:
            lines.append(f"{level}if {atom} is None or not {atom}:")
        emit_rest(rest[1:], level + "    ")
        lines.append(f"{level}else:")
        lines.append(f"{level}    {result} = {definitive}")

    emit_rest(list(operands), indent)
    return result


def _codegen_many(expressions: List[BoundExpression]) -> Optional[Callable[[Row], Row]]:
    """Fuse a projection list into ONE generated function.

    The closure tree built by :meth:`BoundExpression.compile` pays a
    Python call per node per row; for the arithmetic-heavy projections
    of aggregation queries that dominates the profile.  Emitting the
    whole list as straight-line source collapses it to a single frame.
    Returns None when any node falls outside the supported subset (the
    caller keeps the closure path as ground truth and fallback).
    """
    lines: List[str] = []
    env: dict = {}
    counter = [0]
    try:
        atoms = [_emit(expression, lines, env, counter) for expression in expressions]
    except _CodegenUnsupported:
        return None
    tuple_src = ", ".join(atoms) + ("," if len(atoms) == 1 else "")
    source = "def _projection(row):\n" + "\n".join(lines) + \
        f"\n    return ({tuple_src})"
    exec(compile(source, "<repro-exec-codegen>", "exec"), env)
    return env["_projection"]


def codegen_group_update(
    aggregates: List[Tuple[object, Optional[BoundExpression]]],
) -> Optional[Tuple[Callable[[Row, list], None], list]]:
    """Fuse a GROUP BY's per-row work into one ``(row, acc) -> None`` call.

    For count/sum/avg — whose accumulators are plain value tuples and
    whose ``partial()`` is the accumulator itself — the per-aggregate
    ``update`` dispatch can be generated inline over a flat, mutable slot
    list: no tuple reallocation per row, one Python frame for the whole
    aggregate set.  Returns ``(update, initial_slots)`` where
    ``initial_slots`` is the concatenation of every aggregate's
    ``create()`` tuple (so ``tuple(acc)`` is exactly the concatenated
    partials at flush time), or None when any aggregate or argument
    falls outside the fusable subset.
    """
    if not aggregates:
        return None
    lines: List[str] = []
    env: dict = {}
    counter = [0]
    try:
        initial = _emit_aggregate_updates(aggregates, lines, env, counter, "    ")
    except _CodegenUnsupported:
        return None
    source = "def _update_group(row, acc):\n" + "\n".join(lines)
    exec(compile(source, "<repro-exec-codegen>", "exec"), env)
    return env["_update_group"], initial


def _emit_aggregate_updates(
    aggregates: List[Tuple[object, Optional[BoundExpression]]],
    lines: List[str], env: dict, counter: List[int], indent: str,
    ref: Optional[Callable[[int], str]] = None,
) -> list:
    """Emit per-row update statements over a flat slot list named ``acc``.

    Shared by the row-path :func:`codegen_group_update` and the column
    kernel :func:`codegen_group_kernel` so both execution modes perform
    bit-identical accumulation.  Returns the initial slot list; raises
    :class:`_CodegenUnsupported` outside the count/sum/avg subset.
    """
    from repro.sql.functions import AvgAggregate, CountAggregate, SumAggregate

    initial: list = []
    for aggregate, arg in aggregates:
        kind = type(aggregate)
        atom = _emit(
            arg if arg is not None else Const(True), lines, env, counter,
            indent, ref,
        )
        slot = len(initial)
        if kind is CountAggregate:
            initial.append(0)
            lines.append(f"{indent}if {atom} is not None:")
            lines.append(f"{indent}    acc[{slot}] += 1")
        elif kind is SumAggregate:
            initial.append(None)
            lines.append(f"{indent}if {atom} is not None:")
            lines.append(f"{indent}    s{slot} = acc[{slot}]")
            lines.append(
                f"{indent}    acc[{slot}] = {atom} if s{slot} is None "
                f"else s{slot} + {atom}"
            )
        elif kind is AvgAggregate:
            initial.extend([0.0, 0])
            lines.append(f"{indent}if {atom} is not None:")
            lines.append(f"{indent}    acc[{slot}] += {atom}")
            lines.append(f"{indent}    acc[{slot + 1}] += 1")
        else:
            raise _CodegenUnsupported
    return initial


def compile_expression(expression: BoundExpression) -> Evaluator:
    """Compile one expression, preferring generated straight-line code.

    Filter predicates evaluate once per input row; when the expression is
    inside the codegen subset this avoids a Python call per tree node.
    Falls back to the closure compiler for everything else.
    """
    lines: List[str] = []
    env: dict = {}
    counter = [0]
    try:
        atom = _emit(expression, lines, env, counter)
    except _CodegenUnsupported:
        return expression.compile()
    source = "def _evaluate(row):\n" + "\n".join(lines) + f"\n    return {atom}"
    exec(compile(source, "<repro-exec-codegen>", "exec"), env)
    return env["_evaluate"]


def compile_many(expressions: List[BoundExpression]) -> Callable[[Row], Row]:
    """Compile a projection list into a ``row -> tuple`` closure.

    Projection lists sit on the innermost loop of every operator, so the
    common shapes get dedicated fast paths: an all-column-reference list
    becomes a single ``itemgetter``, the arithmetic/comparison subset is
    code-generated into one function (see :func:`_codegen_many`), and
    small arities unroll the tuple construction instead of paying a
    generator per row.
    """
    if not expressions:
        return lambda row: ()
    if all(type(expression) is InputRef for expression in expressions):
        indices = [expression.index for expression in expressions]
        if len(indices) == 1:
            index = indices[0]
            return lambda row: (row[index],)
        return operator.itemgetter(*indices)
    generated = _codegen_many(expressions)
    if generated is not None:
        return generated
    compiled = [expression.compile() for expression in expressions]
    if len(compiled) == 1:
        only = compiled[0]
        return lambda row: (only(row),)
    if len(compiled) == 2:
        first, second = compiled
        return lambda row: (first(row), second(row))
    if len(compiled) == 3:
        first, second, third = compiled
        return lambda row: (first(row), second(row), third(row))
    if len(compiled) == 4:
        first, second, third, fourth = compiled
        return lambda row: (first(row), second(row), third(row), fourth(row))
    return lambda row: tuple(evaluator(row) for evaluator in compiled)


# ---------------------------------------------------------------------------
# column-loop codegen (vectorized execution; see repro.exec.vectorized)
# ---------------------------------------------------------------------------
#
# Each kernel compiles one operator's whole per-batch work into a single
# generated function running ONE ``for i in sel:`` loop over column lists
# (``col{idx}`` locals — a distinct prefix from the ``c{n}`` environment
# constants).  Every kernel returns None when any expression falls
# outside the emitter's subset; the caller then drops the task back to
# the row pipeline, which stays the ground truth.

def _column_ref(used: set) -> Callable[[int], str]:
    """Atom renderer for column kernels; records referenced columns."""
    def ref(index: int) -> str:
        used.add(index)
        return f"col{index}[i]"
    return ref


def _column_bindings(used: set) -> List[str]:
    return [f"    col{index} = cols[{index}]" for index in sorted(used)]


def _tuple_src(atoms: List[str]) -> str:
    if not atoms:
        return "()"
    if len(atoms) == 1:
        return f"({atoms[0]},)"
    return "(" + ", ".join(atoms) + ")"


def _compile_kernel(source: str, env: dict, name: str):
    exec(compile(source, "<repro-vector-codegen>", "exec"), env)
    return env[name]


def codegen_filter_kernel(
    predicate: BoundExpression,
) -> Optional[Callable[[List[list], Sequence[int]], List[int]]]:
    """``(cols, sel) -> new_sel``: positions where the predicate is TRUE
    (three-valued logic — NULL and FALSE rows are dropped alike)."""
    lines: List[str] = []
    env: dict = {}
    counter = [0]
    used: set = set()
    try:
        atom = _emit(predicate, lines, env, counter, "        ", _column_ref(used))
    except _CodegenUnsupported:
        return None
    source = "\n".join(
        ["def _filter_batch(cols, sel):"]
        + _column_bindings(used)
        + [
            "    out = []",
            "    append = out.append",
            "    for i in sel:",
        ]
        + lines
        + [
            f"        if {atom} is True:",
            "            append(i)",
            "    return out",
        ]
    )
    return _compile_kernel(source, env, "_filter_batch")


def codegen_project_kernel(
    expressions: List[BoundExpression],
) -> Optional[Callable[[List[list], Sequence[int]], List[list]]]:
    """``(cols, sel) -> out_cols``: evaluate a projection list over the
    selected rows, producing dense output columns."""
    lines: List[str] = []
    env: dict = {}
    counter = [0]
    used: set = set()
    try:
        atoms = [
            _emit(expression, lines, env, counter, "        ", _column_ref(used))
            for expression in expressions
        ]
    except _CodegenUnsupported:
        return None
    header = ["def _project_batch(cols, sel):"] + _column_bindings(used)
    for position in range(len(atoms)):
        header.append(f"    out{position} = []")
        header.append(f"    a{position} = out{position}.append")
    body = ["    for i in sel:"] + lines + [
        f"        a{position}({atom})" for position, atom in enumerate(atoms)
    ]
    outs = ", ".join(f"out{position}" for position in range(len(atoms)))
    source = "\n".join(header + body + [f"    return [{outs}]"])
    return _compile_kernel(source, env, "_project_batch")


def codegen_keys_kernel(
    expressions: List[BoundExpression],
) -> Optional[Callable[[List[list], Sequence[int]], list]]:
    """``(cols, sel) -> keys``: one key tuple per selected row, with
    ``None`` standing for a key containing NULL (never matches an
    equi-join; the probe loop handles outer-join padding)."""
    lines: List[str] = []
    env: dict = {}
    counter = [0]
    used: set = set()
    try:
        atoms = [
            _emit(expression, lines, env, counter, "        ", _column_ref(used))
            for expression in expressions
        ]
    except _CodegenUnsupported:
        return None
    header = ["def _keys_batch(cols, sel):"] + _column_bindings(used) + [
        "    out = []",
        "    append = out.append",
        "    for i in sel:",
    ]
    tail: List[str] = []
    if atoms:
        null_test = " or ".join(f"{atom} is None" for atom in atoms)
        tail += [
            f"        if {null_test}:",
            "            append(None)",
            "        else:",
            f"            append({_tuple_src(atoms)})",
        ]
    else:
        tail += ["        append(())"]
    source = "\n".join(header + lines + tail + ["    return out"])
    return _compile_kernel(source, env, "_keys_batch")


def codegen_group_kernel(
    key_expressions: List[BoundExpression],
    aggregates: List[Tuple[object, Optional[BoundExpression]]],
    max_groups: int,
) -> Optional[Tuple[Callable, list, bool]]:
    """``(cols, sel, table, initial, flush) -> None``: the whole map-side
    GROUP BY inner loop — key build, hash probe, pressure flush and the
    fused count/sum/avg accumulator updates — in one generated frame.
    Returns ``(kernel, initial_slots, scalar_key)``; accumulation
    statements come from the same emitter as the row path, so partials
    are identical.  Single-key grouping probes the table with the bare
    value (``scalar_key`` True): no per-row 1-tuple allocation, and a
    string key's cached hash is reused — equality over scalars matches
    equality over their 1-tuples, so the groups are unchanged.
    """
    lines: List[str] = []
    env: dict = {}
    counter = [0]
    used: set = set()
    ref = _column_ref(used)
    scalar_key = len(key_expressions) == 1
    try:
        key_atoms = [
            _emit(expression, lines, env, counter, "        ", ref)
            for expression in key_expressions
        ]
        probe = [
            f"        k = {key_atoms[0] if scalar_key else _tuple_src(key_atoms)}",
            "        acc = table_get(k)",
            "        if acc is None:",
            f"            if len(table) >= {int(max_groups)}:",
            "                flush()",
            "            acc = initial[:]",
            "            table[k] = acc",
        ]
        agg_lines: List[str] = []
        initial = _emit_aggregate_updates(
            aggregates, agg_lines, env, counter, "        ", ref
        ) if aggregates else []
    except _CodegenUnsupported:
        return None
    source = "\n".join(
        ["def _group_batch(cols, sel, table, initial, flush):"]
        + _column_bindings(used)
        + ["    table_get = table.get", "    for i in sel:"]
        + lines
        + probe
        + agg_lines
    )
    return _compile_kernel(source, env, "_group_batch"), initial, scalar_key


def _emit_inline_key_encode(
    atoms: List[str], lines: List[str], indent: str
) -> None:
    """Emit statements computing ``kb = serialize_fields(key)`` inline.

    Per field: an exact-type branch producing the same tagged bytes
    :func:`repro.common.kv._encode_fields` would; any field outside the
    exact primitive types sets its part to ``None`` and the assembly
    falls back to ``_ser(key)``, so the bytes are identical by
    construction in every case.
    """
    for position, atom in enumerate(atoms):
        part = f"kp{position}"
        lines += [
            f"{indent}kt = type({atom})",
            f"{indent}if kt is str:",
            f"{indent}    kd = {atom}.encode('utf-8')",
            f"{indent}    {part} = _TS + _u16(len(kd)) + kd",
            f"{indent}elif kt is int:",
            f"{indent}    {part} = _TI + _i64({atom})",
            f"{indent}elif kt is float:",
            f"{indent}    {part} = _TD + _f64({atom})",
            f"{indent}elif {atom} is None:",
            f"{indent}    {part} = _TN",
            f"{indent}elif kt is bool:",
            f"{indent}    {part} = _BT if {atom} else _BF",
            f"{indent}else:",
            f"{indent}    {part} = None",
        ]
    parts = [f"kp{position}" for position in range(len(atoms))]
    if parts:
        null_test = " or ".join(f"{part} is None" for part in parts)
        lines += [
            f"{indent}if {null_test}:",
            f"{indent}    kb = _ser(key)",
            f"{indent}else:",
            f"{indent}    kb = _AR + {' + '.join(parts)} + _Z0",
        ]
    else:
        lines.append(f"{indent}kb = _AR + _Z0")


def _emit_inline_value_size(
    atoms: List[str], base: int, lines: List[str], indent: str
) -> None:
    """Emit statements computing ``vsz = fields_size(value)`` inline.

    *base* carries the statically-known bytes (arity byte plus the
    integer tag's 9).  Mirrors :func:`repro.common.kv.fields_size`
    branch for branch; any exotic field type makes the whole value fall
    back to ``_fs(value)`` (``vsz`` set to ``None`` then resolved once).
    """
    lines.append(f"{indent}vsz = {base}")
    for atom in atoms:
        lines += [
            f"{indent}if vsz is not None:",
            f"{indent}    vt = type({atom})",
            f"{indent}    if vt is str:",
            f"{indent}        vsz += 3 + (len({atom}) if {atom}.isascii()"
            f" else len({atom}.encode('utf-8')))",
            f"{indent}    elif vt is int or vt is float:",
            f"{indent}        vsz += 9",
            f"{indent}    elif {atom} is None:",
            f"{indent}        vsz += 1",
            f"{indent}    elif vt is bool:",
            f"{indent}        vsz += 2",
            f"{indent}    else:",
            f"{indent}        vsz = None",
        ]
    if atoms:
        lines += [
            f"{indent}if vsz is None:",
            f"{indent}    vsz = _fs(value)",
        ]


def codegen_sink_kernel(
    key_expressions: List[BoundExpression],
    value_expressions: List[BoundExpression],
    tag: int,
) -> Optional[Callable]:
    """``(cols, sel, num_partitions, collect, histogram) -> (pairs, bytes)``:
    the entire ReduceSink row loop fused — key/value build, the single
    key encoding that feeds both the partition hash and the wire size,
    the memo pre-warm and the size histogram.  Key encoding and value
    sizing are emitted inline (exact-type branches mirroring the kv
    serde) so the per-pair work is branch arithmetic, not function
    calls; exotic types fall back to the serde functions themselves.
    """
    key_lines: List[str] = []
    env: dict = {}
    counter = [0]
    used: set = set()
    ref = _column_ref(used)
    try:
        key_exprs = [
            _emit(expression, key_lines, env, counter, "        ", ref)
            for expression in key_expressions
        ]
        value_lines: List[str] = []
        value_exprs = [
            _emit(expression, value_lines, env, counter, "        ", ref)
            for expression in value_expressions
        ]
    except _CodegenUnsupported:
        return None
    env.update({
        "_ser": serialize_fields,
        "_fs": fields_size,
        "_crc": zlib.crc32,
        "_KV": KeyValue,
        "_new": object.__new__,
        "_u16": _U16.pack,
        "_i64": _I64.pack,
        "_f64": _F64.pack,
        "_TS": b"S",
        "_TI": b"I",
        "_TD": b"D",
        "_TN": b"N",
        "_BT": b"B\x01",
        "_BF": b"B\x00",
        "_AR": bytes([len(key_expressions)]),
        "_Z0": b"\x00",
    })
    # alias every field into a plain local so the inline branches never
    # re-evaluate an expression (column loads are cheap; temps are free)
    key_atoms = []
    for position, expr in enumerate(key_exprs):
        key_lines.append(f"        kw{position} = {expr}")
        key_atoms.append(f"kw{position}")
    value_atoms = []
    for position, expr in enumerate(value_exprs):
        value_lines.append(f"        vw{position} = {expr}")
        value_atoms.append(f"vw{position}")
    key_lines.append(f"        key = {_tuple_src(key_atoms)}")
    _emit_inline_key_encode(key_atoms, key_lines, "        ")
    value_src = "(" + ", ".join([str(int(tag))] + value_atoms) + \
        ("," if not value_atoms else "") + ")"
    value_lines.append(f"        value = {value_src}")
    # arity byte + the tag field, an exact int, is always 9 bytes
    _emit_inline_value_size(value_atoms, 1 + 9, value_lines, "        ")
    source = "\n".join(
        ["def _sink_batch(cols, sel, num_partitions, collect_batch, histogram):"]
        + _column_bindings(used)
        + [
            "    parts = []",
            "    parts_append = parts.append",
            "    out_pairs = []",
            "    pairs_append = out_pairs.append",
            "    sizes = []",
            "    sizes_append = sizes.append",
            "    for i in sel:",
        ]
        + key_lines
        + value_lines
        + [
            "        size = len(kb) - 1 + vsz",
            # KeyValue is a frozen dataclass: filling __dict__ directly
            # skips its __init__ (two object.__setattr__ frames) and the
            # size-memo seeding write; the resulting pair is
            # indistinguishable from one built the normal way
            "        pair = _new(_KV)",
            "        state = pair.__dict__",
            '        state["key"] = key',
            '        state["value"] = value',
            '        state["_size"] = size',
            "        sizes_append(size)",
            "        parts_append((_crc(kb) & 0x7FFFFFFF) % num_partitions)",
            "        pairs_append(pair)",
            # histogram is a Counter: update() counts the size list in C
            "    histogram.update(sizes)",
            "    collect_batch(parts, out_pairs)",
            "    return len(out_pairs), sum(sizes)",
        ]
    )
    return _compile_kernel(source, env, "_sink_batch")


def stable_hash(fields: Tuple[object, ...]) -> int:
    """Deterministic cross-process hash of a key tuple (CRC32 of the wire
    encoding) — Python's builtin ``hash`` is salted per process, which
    would make the two engines partition differently."""
    return zlib.crc32(serialize_fields(fields)) & 0x7FFFFFFF


def require_boolean(expression: BoundExpression, context: str) -> BoundExpression:
    if expression.dtype is not DataType.BOOLEAN:
        raise SemanticError(f"{context} must be boolean, got {expression.dtype}")
    return expression
