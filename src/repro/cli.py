"""Command-line interface: a miniature `hive` shell over the simulation.

Examples
--------
Run a query against a generated TPC-H warehouse on both engines::

    python -m repro --workload tpch --sf 10 \
        -e "SELECT count(*) FROM lineitem" --engine hadoop --engine datampi

Execute a TPC-H query by number and capture a cross-layer trace::

    python -m repro --workload tpch --sf 20 --format orc --tpch-query 12 \
        --trace q12.json     # load q12.json in chrome://tracing

Interactive shell (one statement per line, `quit` to exit)::

    python -m repro --workload hibench --gb 5 --interactive
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import connect, make_warehouse
from repro.common.config import (
    FAULT_SPEC,
    LEASE_AUDIT,
    LLAP_CACHE_MB,
    PARALLEL_WORKERS,
    QUERY_DEADLINE,
    RESULT_CACHE_ENABLED,
    RESULT_CACHE_ENTRIES,
    SCHED_DEFAULT_POOL,
    SCHED_MAX_CONCURRENT,
    SCHED_POLICY,
    SCHED_POOLS,
    SKEWJOIN_THRESHOLD,
    STATS_ENABLED,
)
from repro.common.errors import ReproError
from repro.common.units import format_duration
from repro.engines import available
from repro.obs import write_chrome_trace
from repro.reporting.breakdown import breakdown_query
from repro.storage.hdfs import HDFS
from repro.storage.metastore import Metastore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hive on DataMPI (ICDCS'15) — simulated Hive shell",
    )
    parser.add_argument(
        "--engine", action="append", choices=available(),
        help="engine(s) to run on (repeatable; default: datampi)",
    )
    parser.add_argument(
        "--workload", choices=["none", "tpch", "hibench"], default="none",
        help="pre-load a generated warehouse",
    )
    parser.add_argument("--sf", type=float, default=10.0, help="TPC-H scale factor (GB)")
    parser.add_argument("--gb", type=float, default=5.0, help="HiBench nominal size (GB)")
    parser.add_argument(
        "--format", default="text", choices=["text", "sequence", "orc"],
        help="base-table file format",
    )
    parser.add_argument("--sample", type=int, default=6000,
                        help="sampled rows for the biggest table")
    parser.add_argument("--tpch-query", type=int, choices=range(1, 23),
                        metavar="N", help="run TPC-H query N")
    parser.add_argument("-e", "--execute", action="append", default=[],
                        help="HiveQL to execute (repeatable)")
    parser.add_argument("-f", "--file", help="HiveQL script file")
    parser.add_argument("--set", action="append", default=[], metavar="K=V",
                        help="session configuration, e.g. hive.datampi.parallelism=enhanced")
    parser.add_argument("--faults", metavar="SPEC",
                        help="fault plan, e.g. 'seed:7; fail:0.05; "
                             "crash:w2@30-90; drain:w3@40; scale-up:w7@50' "
                             "(grammar in docs/fault_model.md)")
    parser.add_argument("--deadline", type=float, metavar="SECONDS",
                        help="per-query deadline in simulated seconds for "
                             "scheduled queries (repro.query.deadline); a "
                             "query past it fails with QueryTimeoutError")
    parser.add_argument("--trace", metavar="OUT.json",
                        help="write a Chrome-trace JSON of every query "
                             "(simulated time; one pid per engine)")
    parser.add_argument("--interactive", action="store_true",
                        help="read statements from stdin")
    parser.add_argument("--quiet", action="store_true", help="rows only, no timing")
    parser.add_argument("--scheduler", choices=["fifo", "fair", "capacity"],
                        help="submit every statement concurrently to one "
                             "shared cluster under this policy "
                             "(docs/scheduling.md)")
    parser.add_argument("--concurrency", type=int, default=0, metavar="N",
                        help="global admission cap for --scheduler "
                             "(0 = unlimited); implies --scheduler fifo")
    parser.add_argument("--pool", action="append", default=[], metavar="SPEC",
                        help="declare a scheduling pool, e.g. "
                             "'etl:weight=2,cap=1,queue=4' (repeatable; the "
                             "first one becomes the submit pool)")
    parser.add_argument("--lease-audit", action="store_true",
                        help="record the per-slot lease event trail "
                             "(repro.lease.audit; aggregate accounting "
                             "is always on)")
    parser.add_argument("--llap-cache-mb", type=float, metavar="MB",
                        help="per-node decoded-stripe cache capacity for "
                             "--engine llap (repro.llap.cache.mb)")
    parser.add_argument("--parallel", metavar="N",
                        help="dispatch task compute to N persistent worker "
                             "processes ('auto' = cores-1, 0 = inline; "
                             "repro.parallel.workers)")
    parser.add_argument("--result-cache-entries", type=int, metavar="N",
                        help="driver result-cache LRU capacity "
                             "(repro.result.cache.entries)")
    parser.add_argument("--no-result-cache", action="store_true",
                        help="disable the driver result cache "
                             "(repro.result.cache.enabled=false)")
    parser.add_argument("--no-stats", action="store_true",
                        help="plan from raw table bytes, ignoring collected "
                             "statistics (repro.stats.enabled=false)")
    parser.add_argument("--skew-threshold", type=float, metavar="SHARE",
                        help="heavy-hitter share above which a join key is "
                             "split across reducers; 0 disables skew joins "
                             "(repro.skewjoin.threshold)")
    return parser


def load_workload(args, hdfs: HDFS, metastore: Metastore) -> None:
    if args.workload == "tpch":
        from repro.workloads.tpch import load_tpch

        info = load_tpch(hdfs, metastore, sf=args.sf, lineitem_sample=args.sample,
                         format_name=args.format)
        print(f"loaded TPC-H SF-{args.sf:g} ({args.format}): "
              f"{info.total_logical_bytes / 2**30:.1f} GB logical")
    elif args.workload == "hibench":
        from repro.workloads.hibench import load_hibench

        load_hibench(hdfs, metastore, nominal_gb=args.gb,
                     sample_uservisits=args.sample, format_name=args.format)
        print(f"loaded HiBench {args.gb:g} GB ({args.format})")


def run_statement(sessions, sql: str, quiet: bool, trace_roots=None) -> None:
    for engine_name, session in sessions:
        try:
            results = session.execute(sql)
        except ReproError as error:
            print(f"[{engine_name}] ERROR: {error}", file=sys.stderr)
            continue
        breakdown = breakdown_query("cli", results)
        for result in results:
            if result.statement in ("select", "explain") and result.rows is not None:
                for row in result.rows:
                    print("\t".join("NULL" if v is None else str(v) for v in row))
            if trace_roots is not None and result.trace is not None:
                trace_roots.append(result.trace)
        if not quiet:
            print(
                f"[{engine_name}] {breakdown.num_jobs} job(s), "
                f"{format_duration(breakdown.total)} simulated "
                f"(startup {breakdown.startup:.1f}s, "
                f"map-shuffle {breakdown.map_shuffle:.1f}s)",
                file=sys.stderr,
            )


def run_concurrent(sessions, statements: List[str], quiet: bool,
                   trace_roots=None) -> None:
    """Submit every statement script as its own concurrent query on each
    engine's shared cluster, then drain and report the workload."""
    for engine_name, session in sessions:
        handles = []
        for sql in statements:
            try:
                handles.append(session.submit(sql))
            except ReproError as error:
                print(f"[{engine_name}] REJECTED: {error}", file=sys.stderr)
        session.scheduler.drain()
        for handle in handles:
            try:
                handle.result()
            except ReproError as error:
                print(f"[{engine_name}] {handle.query_id} ERROR: {error}",
                      file=sys.stderr)
                continue
            for result in handle.results:
                if result.statement in ("select", "explain") and result.rows is not None:
                    for row in result.rows:
                        print("\t".join("NULL" if v is None else str(v) for v in row))
                if trace_roots is not None and result.trace is not None:
                    trace_roots.append(result.trace)
        if not quiet:
            summary = session.scheduler.summary()
            p50 = summary["latency_p50"] or 0.0
            p99 = summary["latency_p99"] or 0.0
            line = (
                f"[{engine_name}] {summary['queries']} quer(ies) under "
                f"{summary['policy']}: makespan "
                f"{format_duration(summary['makespan'])}, p50 latency "
                f"{format_duration(p50)}, p99 {format_duration(p99)}, "
                f"fairness {summary['fairness']:.3f}"
            )
            if summary["rejected"]:
                line += f", rejected {summary['rejected']}"
            if summary["peak_queue_depth"]:
                line += f", peak queue {summary['peak_queue_depth']}"
            print(line, file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    engines = args.engine or ["datampi"]

    hdfs, metastore = make_warehouse(num_workers=7)
    load_workload(args, hdfs, metastore)

    concurrent = bool(args.scheduler) or args.concurrency > 0
    sessions = []
    for engine_name in engines:
        session = connect(engine=engine_name, hdfs=hdfs, metastore=metastore)
        for assignment in args.set:
            key, _, value = assignment.partition("=")
            session.conf.set(key.strip(), value.strip())
        if args.faults:
            session.conf.set(FAULT_SPEC, args.faults)
        if args.deadline is not None:
            session.conf.set(QUERY_DEADLINE, args.deadline)
        if args.llap_cache_mb is not None:
            session.conf.set(LLAP_CACHE_MB, args.llap_cache_mb)
        if args.parallel is not None:
            session.conf.set(PARALLEL_WORKERS, args.parallel)
        if args.result_cache_entries is not None:
            session.conf.set(RESULT_CACHE_ENTRIES, args.result_cache_entries)
        if args.no_result_cache:
            session.conf.set(RESULT_CACHE_ENABLED, False)
        if args.no_stats:
            session.conf.set(STATS_ENABLED, False)
        if args.skew_threshold is not None:
            session.conf.set(SKEWJOIN_THRESHOLD, args.skew_threshold)
        if args.lease_audit:
            session.conf.set(LEASE_AUDIT, True)
        if concurrent:
            session.conf.set(SCHED_POLICY, args.scheduler or "fifo")
            session.conf.set(SCHED_MAX_CONCURRENT, args.concurrency)
            if args.pool:
                session.conf.set(SCHED_POOLS, "; ".join(args.pool))
                first = args.pool[0].partition(":")[0].strip()
                session.conf.set(SCHED_DEFAULT_POOL, first)
        sessions.append((engine_name, session))

    trace_roots = [] if args.trace else None
    if args.trace:
        try:  # fail before simulating, not after
            open(args.trace, "w").close()
        except OSError as error:
            print(f"cannot write trace file: {error}", file=sys.stderr)
            return 2

    statements: List[str] = list(args.execute)
    if args.tpch_query:
        from repro.workloads.tpch import tpch_query

        statements.append(tpch_query(args.tpch_query, args.sf))
    if args.file:
        with open(args.file) as handle:
            statements.append(handle.read())

    if concurrent and statements:
        run_concurrent(sessions, statements, args.quiet, trace_roots)
    else:
        for sql in statements:
            run_statement(sessions, sql, args.quiet, trace_roots)

    if args.interactive or not statements:
        print("repro> enter HiveQL (quit to exit)", file=sys.stderr)
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            if line.lower() in ("quit", "exit", "q"):
                break
            run_statement(sessions, line, args.quiet, trace_roots)

    if args.trace:
        write_chrome_trace(args.trace, trace_roots or [])
        print(f"trace: {len(trace_roots or [])} query span tree(s) -> {args.trace}",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
