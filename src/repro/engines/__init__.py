"""Execution engines.

* :mod:`repro.engines.base` — engine interface, shared functional job
  machinery (splits, broadcasts, reducer policy, output writing) and the
  timing record model every benchmark consumes.
* :mod:`repro.engines.local` — in-process reference executor (no cluster
  simulation); the correctness oracle for both real engines.
* :mod:`repro.engines.hadoop` — simulated Hadoop 1.x MapReduce engine.
* :mod:`repro.engines.datampi` — the paper's contribution: the DataMPI
  engine with bipartite O/A communicators and the optimized shuffle.
"""

from repro.engines.base import (
    Engine,
    JobTiming,
    TaskTiming,
    PlanResult,
    decide_num_reducers,
)
from repro.engines.local import LocalEngine

__all__ = [
    "Engine",
    "JobTiming",
    "TaskTiming",
    "PlanResult",
    "decide_num_reducers",
    "LocalEngine",
]
