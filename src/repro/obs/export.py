"""Trace exporters: Chrome-trace JSON and flat CSV/JSON rows.

Chrome trace (the ``chrome://tracing`` / Perfetto "JSON object format"):
spans become complete (``ph: "X"``) events with microsecond timestamps
— *simulated* microseconds — span events become instants (``ph: "i"``),
and metadata events name each engine's process row.  Nesting is implied
by time containment per (pid, tid) lane: driver-level spans sit on a
dedicated lane, task spans sit on their node's lane.

The flat exporters turn the span tree into one row per span
(name/category/start/end/depth + attributes), the shape ``benchmarks/``
consumes for tables.
"""

from __future__ import annotations

import csv
import json
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.trace import Span

_SECONDS_TO_MICROS = 1e6
_DRIVER_LANE = 0  # tid for query/compile/job-level spans


def _span_tid(span: Span, inherited: int) -> int:
    """Node-attributed spans go on the node's lane; others inherit."""
    node = span.attributes.get("node")
    if isinstance(node, int) and node >= 0:
        return node + 1
    return inherited


def chrome_trace_events(
    roots: SpanOrSpans, pid: int = 0, process_name: Optional[str] = None
) -> List[Dict[str, Any]]:
    """Flatten span trees into Chrome-trace event dicts for one process."""
    roots = as_roots(roots)
    events: List[Dict[str, Any]] = []
    if process_name:
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": process_name},
            }
        )

    def emit(span: Span, tid: int) -> None:
        tid = _span_tid(span, tid)
        end = span.end if span.end is not None else span.start
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.category,
                "pid": pid,
                "tid": tid,
                "ts": span.start * _SECONDS_TO_MICROS,
                "dur": max(0.0, end - span.start) * _SECONDS_TO_MICROS,
                "args": dict(span.attributes),
            }
        )
        for event in span.events:
            events.append(
                {
                    "ph": "i",
                    "name": event.name,
                    "cat": span.category,
                    "pid": pid,
                    "tid": tid,
                    "ts": event.time * _SECONDS_TO_MICROS,
                    "s": "t",
                    "args": dict(event.attributes),
                }
            )
        for child in span.children:
            emit(child, tid)

    for root in roots:
        emit(root, _DRIVER_LANE)
    return events


def to_chrome_trace(roots: SpanOrSpans) -> Dict[str, Any]:
    """A loadable Chrome-trace document.

    Accepts one span or many (``QueryResult.trace`` or a list of them).
    Roots are grouped into one trace "process" per engine (the ``engine``
    attribute of the root span); roots without one share process 0.
    """
    roots = as_roots(roots)
    engines: List[str] = []
    events: List[Dict[str, Any]] = []
    for root in roots:
        engine = str(root.attributes.get("engine", ""))
        if engine not in engines:
            engines.append(engine)
        pid = engines.index(engine)
        name = engine or "repro"
        events.extend(chrome_trace_events([root], pid=pid, process_name=name))
    # keep one metadata event per process, not one per root
    seen_meta = set()
    deduped = []
    for event in events:
        if event["ph"] == "M":
            key = (event["pid"], event["args"]["name"])
            if key in seen_meta:
                continue
            seen_meta.add(key)
        deduped.append(event)
    return {
        "traceEvents": deduped,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated-seconds", "source": "repro.obs"},
    }


def write_chrome_trace(path: str, roots: SpanOrSpans) -> Dict[str, Any]:
    document = to_chrome_trace(roots)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1)
    return document


# ---------------------------------------------------------------------------
# flat rows (benchmarks/ tables)
# ---------------------------------------------------------------------------

_FLAT_FIELDS = ["name", "category", "start", "end", "duration", "depth", "parent",
                "attributes"]


def flatten_spans(roots: SpanOrSpans) -> List[Dict[str, Any]]:
    """One dict per span, pre-order, with depth and parent name."""
    roots = as_roots(roots)
    rows: List[Dict[str, Any]] = []

    def emit(span: Span, depth: int, parent: Optional[str]) -> None:
        end = span.end if span.end is not None else span.start
        rows.append(
            {
                "name": span.name,
                "category": span.category,
                "start": span.start,
                "end": end,
                "duration": end - span.start,
                "depth": depth,
                "parent": parent or "",
                "attributes": dict(span.attributes),
            }
        )
        for child in span.children:
            emit(child, depth + 1, span.name)

    for root in roots:
        emit(root, 0, None)
    return rows


def write_spans_json(path: str, roots: SpanOrSpans) -> List[Dict[str, Any]]:
    rows = flatten_spans(roots)
    with open(path, "w") as handle:
        json.dump(rows, handle, indent=1)
    return rows


def write_spans_csv(path: str, roots: SpanOrSpans) -> List[Dict[str, Any]]:
    rows = flatten_spans(roots)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FLAT_FIELDS)
        writer.writeheader()
        for row in rows:
            record = dict(row)
            record["attributes"] = json.dumps(row["attributes"], sort_keys=True)
            writer.writerow(record)
    return rows


def load_chrome_trace(path: str) -> Dict[str, Any]:
    """Read back a Chrome-trace document (round-trip tests)."""
    with open(path) as handle:
        return json.load(handle)


SpanOrSpans = Union[Span, Sequence[Span]]


def as_roots(trace: SpanOrSpans) -> List[Span]:
    """Normalize a single span or a sequence into a root list."""
    if isinstance(trace, Span):
        return [trace]
    return [span for span in trace if span is not None]
