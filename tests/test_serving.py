"""Serving workload tests + regressions for bugs exposed at scale.

Covers the open-loop arrival generator (determinism, arrival-process
shape, Zipf skew, validation), the serving runner's SLO accounting, the
histogram reservoir fix (first-N bias froze percentiles at warm-up),
and — behind ``CHECK_SERVING_FULL=1`` — a long-run soak asserting
scheduler liveness, a clean lease ledger and stable memory across
thousands of queries with mixed deadlines and cancellations.
"""

import gc
import json
import os

import pytest

import repro
from repro.common.config import (
    HEARTBEAT_ENABLED,
    SCHED_MAX_CONCURRENT,
    SCHED_POLICY,
    SCHED_POOLS,
)
from repro.common.errors import AdmissionRejectedError, ConfigError
from repro.obs.metrics import Histogram
from repro.simulate.chaos import assert_clean_ledger
from repro.workloads.serving import (
    SERVING_CATALOG,
    Arrival,
    ServingConfig,
    generate_arrivals,
    load_serving_warehouse,
    run_serving,
)


class TestArrivalGenerator:
    def test_same_config_same_schedule(self):
        config = ServingConfig(num_queries=200, seed=3)
        assert generate_arrivals(config) == generate_arrivals(config)

    def test_seed_changes_schedule(self):
        base = ServingConfig(num_queries=200, seed=3)
        other = ServingConfig(num_queries=200, seed=4)
        assert generate_arrivals(base) != generate_arrivals(other)

    def test_poisson_mean_interarrival_matches_rate(self):
        config = ServingConfig(num_queries=5000, rate=4.0, seed=1)
        arrivals = generate_arrivals(config)
        mean_gap = arrivals[-1].when / len(arrivals)
        assert mean_gap == pytest.approx(1.0 / 4.0, rel=0.1)

    def test_bursty_bursts_are_denser_than_lulls(self):
        config = ServingConfig(
            num_queries=5000, process="bursty", rate=4.0,
            burst_factor=3.0, burst_fraction=0.25, burst_cycle=40.0, seed=1,
        )
        arrivals = generate_arrivals(config)
        burst_window = config.burst_fraction * config.burst_cycle
        in_burst = sum(
            1 for a in arrivals if a.when % config.burst_cycle < burst_window
        )
        in_lull = len(arrivals) - in_burst
        # burst phase is 1/4 of the time at 3x rate: its *density*
        # (arrivals per second of phase) must clearly exceed the lull's
        burst_density = in_burst / burst_window
        lull_density = in_lull / (config.burst_cycle - burst_window)
        assert burst_density > 2.0 * lull_density

    def test_zipf_popularity_is_head_heavy(self):
        config = ServingConfig(num_queries=3000, zipf_s=1.1, seed=5)
        counts = {}
        for arrival in generate_arrivals(config):
            counts[arrival.query_index] = counts.get(arrival.query_index, 0) + 1
        assert max(counts, key=counts.get) == 0
        assert counts[0] > 3 * counts.get(len(SERVING_CATALOG) - 1, 1)

    def test_sessions_pin_pools(self):
        config = ServingConfig(
            num_queries=2000, num_sessions=40,
            pool_weights={"bi": 3.0, "etl": 1.0}, seed=9,
        )
        arrivals = generate_arrivals(config)
        by_session = {}
        for arrival in arrivals:
            by_session.setdefault(arrival.session, set()).add(arrival.pool)
        assert all(len(pools) == 1 for pools in by_session.values())
        assert {a.pool for a in arrivals} == {"bi", "etl"}

    def test_deadline_fraction_is_respected(self):
        config = ServingConfig(
            num_queries=2000, deadline=30.0, deadline_fraction=0.25, seed=2,
        )
        arrivals = generate_arrivals(config)
        tagged = sum(1 for a in arrivals if a.deadline == 30.0)
        assert tagged == pytest.approx(500, rel=0.2)

    @pytest.mark.parametrize("kwargs", [
        {"num_queries": 0},
        {"num_sessions": 0},
        {"process": "weibull"},
        {"rate": 0.0},
        {"catalog": ()},
        {"pool_weights": {}},
        {"pool_weights": {"bi": -1.0}},
        {"deadline_fraction": 1.5},
        {"deadline_fraction": 0.5},  # fraction without a deadline
        {"process": "bursty", "burst_factor": 1.0},
        {"process": "bursty", "burst_fraction": 1.0},
        {"process": "bursty", "burst_factor": 5.0, "burst_fraction": 0.25},
    ])
    def test_invalid_configs_are_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ServingConfig(**kwargs)


def _serving_session(conf=None):
    base = {
        HEARTBEAT_ENABLED: False,
        SCHED_POLICY: "fair",
        SCHED_MAX_CONCURRENT: 8,
        SCHED_POOLS: "bi:weight=2; etl:weight=1",
    }
    base.update(conf or {})
    session = repro.connect(engine="llap", num_workers=4, conf=base)
    load_serving_warehouse(session.hdfs, session.metastore,
                           nominal_gb=0.25, sample_uservisits=600)
    return session


class TestRunServing:
    def test_report_accounting_is_consistent(self):
        config = ServingConfig(
            num_queries=120, num_sessions=30, rate=20.0,
            pool_weights={"bi": 2.0, "etl": 1.0}, seed=13,
        )
        arrivals = generate_arrivals(config)
        with _serving_session() as session:
            report = run_serving(session, arrivals)
        assert report.offered == 120
        assert report.submitted + report.rejected == report.offered
        assert (report.succeeded + report.failed + report.cancelled
                == report.submitted)
        assert report.succeeded > 0
        assert report.latency_p50 is not None
        assert report.latency_p50 <= report.latency_p95 <= report.latency_p99
        assert report.queue_depth_peak >= 0
        assert sum(report.per_pool_submitted.values()) == report.submitted
        # the report must be JSON-serialisable as-is for the bench file
        encoded = json.loads(json.dumps(report.to_dict()))
        assert encoded["offered"] == 120

    def test_bounded_pools_reject_overload(self):
        config = ServingConfig(
            num_queries=150, num_sessions=20, rate=500.0,  # near-simultaneous
            pool_weights={"bi": 1.0}, seed=7,
        )
        arrivals = generate_arrivals(config)
        with _serving_session({
            SCHED_POOLS: "bi:weight=1,cap=2,queue=4",
            SCHED_MAX_CONCURRENT: 2,
        }) as session:
            report = run_serving(session, arrivals)
        assert report.rejected > 0
        assert report.rejection_rate == report.rejected / 150
        assert report.submitted + report.rejected == 150

    def test_deadline_misses_are_counted(self):
        config = ServingConfig(
            num_queries=60, num_sessions=10, rate=200.0,
            pool_weights={"bi": 1.0},
            deadline=0.05, deadline_fraction=1.0, seed=21,
        )
        arrivals = generate_arrivals(config)
        with _serving_session({SCHED_MAX_CONCURRENT: 2}) as session:
            report = run_serving(session, arrivals)
        assert report.deadline_misses > 0
        assert report.deadline_miss_rate > 0

    def test_queue_depth_series_is_decimated(self):
        config = ServingConfig(num_queries=200, rate=50.0, seed=3,
                               pool_weights={"bi": 1.0})
        arrivals = generate_arrivals(config)
        with _serving_session() as session:
            report = run_serving(session, arrivals, max_queue_samples=32)
        assert len(report.queue_depth_series) <= 33  # limit + final sample
        times = [when for when, _depth in report.queue_depth_series]
        assert times == sorted(times)


class TestHistogramReservoir:
    def test_reservoir_tracks_distribution_shift(self):
        """Keeping only the first N samples froze percentiles at warm-up;
        Algorithm R must let a later latency shift move p99."""
        hist = Histogram("serving.latency.test", max_samples=100)
        for _ in range(100):
            hist.observe(1.0)  # warm-up: fills the reservoir
        for _ in range(10_000):
            hist.observe(100.0)  # the real steady state
        assert hist.count == 10_100
        # ~99% of the stream is 100.0: a uniform reservoir is dominated
        # by it.  The pre-fix reservoir held only the hundred 1.0s.
        assert hist.percentile(99) == 100.0
        assert hist.percentile(50) == 100.0
        assert hist.max == 100.0

    def test_reservoir_is_deterministic_per_name(self):
        def build(name):
            hist = Histogram(name, max_samples=50)
            for value in range(1000):
                hist.observe(float(value))
            return hist._samples

        assert build("a") == build("a")
        assert build("a") != build("b")

    def test_reservoir_stays_bounded(self):
        hist = Histogram("bounded", max_samples=64)
        for value in range(5000):
            hist.observe(float(value))
        assert len(hist._samples) == 64
        assert hist.count == 5000


@pytest.mark.skipif(os.environ.get("CHECK_SERVING_FULL") != "1",
                    reason="long-run soak; set CHECK_SERVING_FULL=1")
class TestServingSoak:
    def test_soak_liveness_ledger_and_memory(self):
        """>=5k queries with mixed deadlines and cancellations: the
        scheduler must stay live (every accepted query reaches a terminal
        state), the lease ledger must balance, and memory must not creep
        batch over batch (the agenda-compaction / callback-detach /
        aggregate-ledger fixes are exactly what this pins)."""
        import resource

        def run_batch(session, seed):
            config = ServingConfig(
                num_queries=2600, num_sessions=400, process="bursty",
                rate=40.0, pool_weights={"bi": 2.0, "etl": 1.0},
                deadline=20.0, deadline_fraction=0.3, seed=seed,
            )
            arrivals = generate_arrivals(config)
            scheduler = session.scheduler
            sim = scheduler.runtime.sim
            handles = []

            def dispatcher():
                for index, arrival in enumerate(arrivals):
                    delay = arrival.when - sim.now
                    if delay > 0:
                        yield sim.timeout(delay)
                    try:
                        handle = session.submit(arrival.sql, pool=arrival.pool,
                                                deadline=arrival.deadline)
                    except AdmissionRejectedError:
                        continue
                    handles.append(handle)
                    if index % 7 == 0:
                        handle.cancel()  # cancel-heavy: exercises compaction

            sim.spawn(dispatcher(), f"soak-dispatcher-{seed}")
            scheduler.drain()
            assert all(handle.done() for handle in handles), "liveness"
            assert_clean_ledger(scheduler.runtime.leases.ledger)
            return len(handles)

        with _serving_session({SCHED_MAX_CONCURRENT: 16}) as session:
            accepted = run_batch(session, seed=1)
            gc.collect()
            rss_after_first = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            accepted += run_batch(session, seed=2)
            gc.collect()
            rss_after_second = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            # a second identical batch must not grow peak RSS much: the
            # agenda, event callbacks and ledger all stay bounded
            growth = rss_after_second - rss_after_first  # KiB on Linux
            assert growth < 64 * 1024, f"RSS grew {growth} KiB batch-over-batch"
            assert accepted >= 4000
            assert session.scheduler.queue_depth == 0
