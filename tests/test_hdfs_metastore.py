"""Tests for the simulated HDFS and the metastore."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SemanticError, StorageError
from repro.common.rows import Schema
from repro.common.units import MB
from repro.storage.hdfs import HDFS
from repro.storage.metastore import Metastore

SCHEMA = Schema.parse("k int, v string")


def make_rows(n):
    return [(i, f"value-{i:06d}") for i in range(n)]


class TestHdfsNamespace:
    def test_write_and_get(self):
        hdfs = HDFS(num_workers=4)
        hdfs.write("/a/b", SCHEMA, make_rows(10))
        assert hdfs.exists("/a/b")
        assert hdfs.get("/a/b").row_count == 10

    def test_duplicate_write_rejected(self):
        hdfs = HDFS(num_workers=4)
        hdfs.write("/a", SCHEMA, make_rows(1))
        with pytest.raises(StorageError):
            hdfs.write("/a", SCHEMA, make_rows(1))

    def test_missing_file(self):
        with pytest.raises(StorageError):
            HDFS(num_workers=4).get("/nope")

    def test_delete_recursive(self):
        hdfs = HDFS(num_workers=4)
        hdfs.write("/dir/p1", SCHEMA, make_rows(1))
        hdfs.write("/dir/p2", SCHEMA, make_rows(1))
        hdfs.write("/other", SCHEMA, make_rows(1))
        hdfs.delete("/dir")
        assert not hdfs.exists("/dir/p1")
        assert hdfs.exists("/other")

    def test_list_dir_sorted(self):
        hdfs = HDFS(num_workers=4)
        hdfs.write("/t/part-2", SCHEMA, make_rows(1))
        hdfs.write("/t/part-1", SCHEMA, make_rows(1))
        assert [f.path for f in hdfs.list_dir("/t")] == ["/t/part-1", "/t/part-2"]

    def test_dir_rows_concat(self):
        hdfs = HDFS(num_workers=4)
        hdfs.write("/t/part-1", SCHEMA, make_rows(3))
        hdfs.write("/t/part-2", SCHEMA, make_rows(2))
        assert len(hdfs.dir_rows("/t")) == 5


class TestBlocks:
    def test_scale_drives_block_count(self):
        hdfs = HDFS(num_workers=4, block_size=64 * MB)
        rows = make_rows(1000)
        # ~16 KB actual -> 320 MB logical -> 5 blocks
        file = hdfs.write("/big", SCHEMA, rows, scale=20000.0)
        assert 4 <= len(file.blocks) <= 7
        assert sum(b.row_count for b in file.blocks) == 1000

    def test_block_logical_bytes_sum_to_file(self):
        hdfs = HDFS(num_workers=4)
        file = hdfs.write("/f", SCHEMA, make_rows(500), scale=1e6)
        assert sum(b.logical_bytes for b in file.blocks) == pytest.approx(
            file.logical_bytes, rel=1e-6
        )

    def test_replication_count_and_distinct(self):
        hdfs = HDFS(num_workers=5, replication=3)
        file = hdfs.write("/f", SCHEMA, make_rows(10))
        for block in file.blocks:
            assert len(block.locations) == 3
            assert len(set(block.locations)) == 3

    def test_replication_clamped_to_workers(self):
        hdfs = HDFS(num_workers=2, replication=3)
        file = hdfs.write("/f", SCHEMA, make_rows(10))
        assert len(file.blocks[0].locations) == 2

    def test_writer_affinity(self):
        hdfs = HDFS(num_workers=5)
        file = hdfs.write("/f", SCHEMA, make_rows(10), writer_node=3)
        assert all(block.locations[0] == 3 for block in file.blocks)

    def test_splits_match_blocks(self):
        hdfs = HDFS(num_workers=4)
        file = hdfs.write("/f", SCHEMA, make_rows(2000), scale=3e5)
        splits = file.splits()
        assert len(splits) == len(file.blocks)
        covered = sorted((s.row_start, s.row_start + s.row_count) for s in splits)
        # contiguous, non-overlapping, full coverage
        assert covered[0][0] == 0
        for (s1, e1), (s2, _e2) in zip(covered, covered[1:]):
            assert e1 == s2
        assert covered[-1][1] == 2000

    def test_empty_file_single_block(self):
        hdfs = HDFS(num_workers=4)
        file = hdfs.write("/empty", SCHEMA, [])
        assert len(file.blocks) == 1
        assert file.blocks[0].row_count == 0

    def test_deterministic_placement(self):
        a = HDFS(num_workers=5, seed=1).write("/f", SCHEMA, make_rows(100), scale=1e5)
        b = HDFS(num_workers=5, seed=1).write("/f", SCHEMA, make_rows(100), scale=1e5)
        assert [x.locations for x in a.blocks] == [y.locations for y in b.blocks]


@settings(max_examples=40, deadline=None)
@given(
    n_rows=st.integers(min_value=1, max_value=400),
    scale=st.floats(min_value=1.0, max_value=1e6),
)
def test_property_blocks_partition_rows(n_rows, scale):
    hdfs = HDFS(num_workers=3)
    file = hdfs.write("/f", SCHEMA, make_rows(n_rows), scale=scale)
    starts = [block.row_start for block in file.blocks]
    assert starts[0] == 0
    assert sum(block.row_count for block in file.blocks) == n_rows
    for block, following in zip(file.blocks, file.blocks[1:]):
        assert block.row_start + block.row_count == following.row_start


class TestMetastore:
    def test_create_get_drop(self):
        hdfs = HDFS(num_workers=3)
        metastore = Metastore(hdfs)
        table = metastore.create_table("t1", SCHEMA)
        assert table.location == "/warehouse/t1"
        assert metastore.get_table("T1") is table
        metastore.drop_table("t1")
        assert not metastore.has_table("t1")

    def test_duplicate_rejected(self):
        metastore = Metastore(HDFS(num_workers=3))
        metastore.create_table("t", SCHEMA)
        with pytest.raises(SemanticError):
            metastore.create_table("T", SCHEMA)

    def test_drop_missing(self):
        metastore = Metastore(HDFS(num_workers=3))
        with pytest.raises(SemanticError):
            metastore.drop_table("ghost")
        metastore.drop_table("ghost", if_exists=True)  # no raise

    def test_drop_removes_files(self):
        hdfs = HDFS(num_workers=3)
        metastore = Metastore(hdfs)
        table = metastore.create_table("t", SCHEMA)
        hdfs.write(f"{table.location}/part-0", SCHEMA, make_rows(4))
        metastore.drop_table("t")
        assert hdfs.dir_rows("/warehouse/t") == []

    def test_truncate_keeps_entry(self):
        hdfs = HDFS(num_workers=3)
        metastore = Metastore(hdfs)
        table = metastore.create_table("t", SCHEMA)
        hdfs.write(f"{table.location}/part-0", SCHEMA, make_rows(4))
        metastore.truncate_table("t")
        assert metastore.has_table("t")
        assert table.row_count(hdfs) == 0

    def test_table_stats(self):
        hdfs = HDFS(num_workers=3)
        metastore = Metastore(hdfs)
        table = metastore.create_table("t", SCHEMA)
        hdfs.write(f"{table.location}/part-0", SCHEMA, make_rows(7), scale=100.0)
        assert table.row_count(hdfs) == 7
        assert table.logical_bytes(hdfs) > 0
        assert len(table.splits(hdfs)) >= 1
