"""Key-value pair model and binary serde for the shuffle path.

DataMPI moves *key-value pairs*, not byte buffers, between the O and A
communicators; Hadoop's intermediate data is Writable-encoded pairs.  Both
engines in this reproduction share one wire format so their shuffle byte
volumes are directly comparable (Fig 2(c)/(d) of the paper plots exactly
these serialized sizes).

Keys and values are tuples of primitive Python values.  The encoding is a
compact tagged format:

======  ==========================================
tag     payload
======  ==========================================
``N``   null, no payload
``I``   8-byte big-endian signed integer
``D``   8-byte IEEE-754 double
``S``   2-byte length + UTF-8 bytes
``B``   1-byte boolean
======  ==========================================

Each tuple is prefixed with a 1-byte arity.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

from repro.common.errors import ExecutionError

Fields = Tuple[object, ...]


@dataclass(frozen=True)
class KeyValue:
    """One shuffle record: a composite key and a composite value."""

    key: Fields
    value: Fields

    def serialized_size(self) -> int:
        """Wire size of this pair, memoized.

        Collectors on both engines account every pair's size, often more
        than once (partition buffer + histogram); the pair is immutable,
        so the first computation is cached on the instance.
        """
        try:
            return self._size  # type: ignore[attr-defined]
        except AttributeError:
            size = kv_size(self)
            object.__setattr__(self, "_size", size)
            return size


_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_U16 = struct.Struct(">H")


def _encode_fields(fields: Fields, out: bytearray) -> None:
    if len(fields) > 255:
        raise ExecutionError("composite key/value arity > 255")
    out.append(len(fields))
    for field in fields:
        # exact-type dispatch first: `type(True) is bool`, so the bool/int
        # precedence of the isinstance chain is preserved; subclasses fall
        # through to the chain below.
        kind = type(field)
        if kind is str:
            data = field.encode("utf-8")
            if len(data) > 0xFFFF:
                raise ExecutionError("string field longer than 64 KiB")
            out += b"S" + _U16.pack(len(data)) + data
        elif kind is int:
            out += b"I" + _I64.pack(field)
        elif kind is float:
            out += b"D" + _F64.pack(field)
        elif field is None:
            out += b"N"
        elif kind is bool:
            out += b"B" + (b"\x01" if field else b"\x00")
        elif isinstance(field, bool):
            out += b"B" + (b"\x01" if field else b"\x00")
        elif isinstance(field, int):
            out += b"I" + _I64.pack(field)
        elif isinstance(field, float):
            out += b"D" + _F64.pack(field)
        elif isinstance(field, str):
            data = field.encode("utf-8")
            if len(data) > 0xFFFF:
                raise ExecutionError("string field longer than 64 KiB")
            out += b"S" + _U16.pack(len(data)) + data
        else:
            raise ExecutionError(f"unsupported field type: {type(field)!r}")


def _decode_fields(buffer: bytes, offset: int) -> Tuple[Fields, int]:
    arity = buffer[offset]
    offset += 1
    fields = []
    for _ in range(arity):
        tag = buffer[offset : offset + 1]
        offset += 1
        if tag == b"N":
            fields.append(None)
        elif tag == b"B":
            fields.append(buffer[offset] == 1)
            offset += 1
        elif tag == b"I":
            fields.append(_I64.unpack_from(buffer, offset)[0])
            offset += 8
        elif tag == b"D":
            fields.append(_F64.unpack_from(buffer, offset)[0])
            offset += 8
        elif tag == b"S":
            (length,) = _U16.unpack_from(buffer, offset)
            offset += 2
            fields.append(buffer[offset : offset + length].decode("utf-8"))
            offset += length
        else:
            raise ExecutionError(f"corrupt KV stream (tag {tag!r})")
    return tuple(fields), offset


def serialize_kv(pair: KeyValue) -> bytes:
    """Encode one pair into the tagged binary format."""
    out = bytearray()
    _encode_fields(pair.key, out)
    _encode_fields(pair.value, out)
    return bytes(out)


def serialize_fields(fields: Fields) -> bytes:
    """Encode one tuple as a key with an empty value.

    Byte-identical to ``serialize_kv(KeyValue(fields, ()))`` without
    building the throwaway pair — the partitioning hash calls this once
    per row.
    """
    out = bytearray()
    _encode_fields(fields, out)
    out.append(0)  # empty-value arity
    return bytes(out)


def deserialize_kv(buffer: bytes, offset: int = 0) -> Tuple[KeyValue, int]:
    """Decode one pair starting at *offset*; returns (pair, next_offset)."""
    key, offset = _decode_fields(buffer, offset)
    value, offset = _decode_fields(buffer, offset)
    return KeyValue(key, value), offset


# Exact-type sizes for the fixed-width tags; `type(True) is bool` keeps
# the bool/int distinction without an isinstance ladder per field.
_FIXED_FIELD_SIZES = {type(None): 1, bool: 2, int: 9, float: 9}


def fields_size(fields) -> int:
    """Serialized size of one tuple: arity byte plus tagged fields.

    Accepts any sequence of primitive values, so callers sizing raw rows
    don't pay a ``tuple``/``KeyValue`` allocation first.
    """
    total = 1  # arity byte
    fixed = _FIXED_FIELD_SIZES
    for field in fields:
        # strings first (the dominant field type in warehouse rows):
        # a type identity check is cheaper than the dict lookup
        if type(field) is str:
            # an ASCII string encodes to exactly len(field) bytes —
            # skip the throwaway encode() in the common case
            if field.isascii():
                total += 3 + len(field)
            else:
                total += 3 + len(field.encode("utf-8"))
            continue
        size = fixed.get(type(field))
        if size is not None:
            total += size
        elif isinstance(field, bool):
            total += 2
        elif isinstance(field, int):
            total += 9
        elif isinstance(field, float):
            total += 9
        elif isinstance(field, str):
            total += 3 + len(field.encode("utf-8"))
        else:
            raise ExecutionError(f"unsupported field type: {type(field)!r}")
    return total


def kv_size(pair: KeyValue) -> int:
    """Serialized size of a pair without materializing the buffer.

    Used on the hot path of the cost model: collectors account every pair's
    wire size, so this mirrors :func:`serialize_kv` byte-for-byte.
    """
    return fields_size(pair.key) + fields_size(pair.value)
