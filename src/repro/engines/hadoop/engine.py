"""The Hadoop 1.2.1 MapReduce engine, simulated.

Models exactly the behaviours the paper contrasts with DataMPI:

* **Heavy job control** — JobClient stages the job to the JobTracker,
  TaskTrackers pick tasks up on heartbeats, and *every* task launch pays
  a JVM spawn (per wave — the "process management overhead" the paper's
  JOB3 breakdown highlights).
* **Coarse-grained shuffle** — map tasks sort/spill their output to
  local disk (io.sort.mb buffer), merge the spills, and reducers *copy*
  each finished map's partition over HTTP after the map completes;
  reducers launch after a slow-start fraction of maps are done.
* **Separate map/reduce slots** — 4 + 4 per node, as configured on the
  paper's testbed.
* **Task-granular fault tolerance** — the property the paper credits to
  MapReduce (§I, §VI).  Every map/reduce runs as a chain of *attempts*:
  a failed or crash-interrupted attempt is torn down (slot released,
  heap freed, partial output discarded) and re-executed, preferably
  elsewhere; completed map output lost with its node is recomputed;
  straggling maps get speculative backup attempts; nodes that keep
  failing attempts are blacklisted for the rest of the job.  Faults
  arrive through :class:`repro.simulate.faults.FaultInjector`.

The functional work (operator pipelines, partition/sort/group/reduce) is
the shared code in :mod:`repro.engines.base`; this module adds *when*
and *at what cost* through the discrete-event simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.config import (
    BLACKLIST_THRESHOLD,
    Configuration,
    EXEC_VECTORIZED,
    SPECULATIVE_EXECUTION,
    SPECULATIVE_SLOWDOWN,
    TASK_MAX_ATTEMPTS,
)
from repro.common.kv import KeyValue
from repro.common.units import MB
from repro.engines.base import (
    Engine,
    EngineCapabilities,
    EngineRuntime,
    JobTiming,
    MapOutputCollector,
    PlanResult,
    TaskTiming,
    TaggedSplit,
    assign_splits_locality,
    close_job_span,
    close_task_span,
    collect_plan_result,
    hdfs_write_pipeline,
    decide_num_reducers,
    expand_job_splits,
    job_input_scale,
    load_broadcast_tables,
    open_job_span,
    open_task_span,
    pick_read_source,
    record_job_metrics,
    run_reducer_functionally,
    scan_split,
    scan_split_batch,
    write_task_output,
)
from repro.obs import Tracer, get_metrics
from repro.parallel import pool_from_conf, resolve_compute, spec_for_split
from repro.plan.physical import MRJob, PhysicalPlan
from repro.simulate import (
    Cluster,
    ClusterSpec,
    FaultInjector,
    Interrupt,
    LeaseManager,
    LeaseOwner,
    Simulator,
    SlotPool,
)
from repro.storage.hdfs import HDFS


@dataclass
class HadoopCosts:
    """Calibrated latencies/rates for the Hadoop engine (testbed §V-A)."""

    job_submit: float = 2.2  # JobClient staging + JobTracker admission
    schedule_delay: float = 1.4  # TaskTracker heartbeat pickup, per wave start
    task_jvm_start: float = 1.3  # child JVM spawn per task attempt
    job_cleanup: float = 0.8  # commit + JobTracker retirement
    cpu_map_ms_per_mb: float = 35.0  # deserialize + operator pipeline, text-rate
    cpu_reduce_ms_per_mb: float = 14.0
    cpu_sort_ms_per_mb: float = 7.0  # per merge pass
    cpu_orc_decode_ms_per_mb: float = 14.0  # extra per encoded MB (decompression)
    io_sort_mb: float = 100.0  # map-output buffer before spill (logical MB)
    shuffle_memory_mb: float = 450.0  # reducer in-memory shuffle budget (logical MB)
    slowstart_fraction: float = 0.05  # maps done before reducers launch
    batch_target_mb: float = 8.0  # compute/I-O interleave granularity
    min_batch_rows: int = 200
    # mapred.compress.map.output=true: intermediate data shrinks to this
    # fraction on disk/wire at a CPU cost per (uncompressed) MB
    compress_ratio: float = 0.40
    cpu_compress_ms_per_mb: float = 4.0
    cpu_decompress_ms_per_mb: float = 1.5
    parallel_copies: int = 5  # mapred.reduce.parallel.copies
    speculative_check_seconds: float = 5.0  # straggler-watch polling period


DEFAULT_MAX_TASK_ATTEMPTS = 4  # mapred.map.max.attempts
DEFAULT_BLACKLIST_FAILURES = 3  # mapred.max.tracker.failures (per job)
DEFAULT_SPECULATIVE_SLOWDOWN = 1.5  # lateness multiple that triggers a backup


_MapOutputCollector = MapOutputCollector  # shared with the llap engine


@dataclass
class _FaultContext:
    """Per-job recovery policy: attempt caps, blacklist, speculation."""

    injector: FaultInjector
    max_attempts: int = DEFAULT_MAX_TASK_ATTEMPTS
    blacklist_threshold: int = DEFAULT_BLACKLIST_FAILURES
    speculate: bool = False
    spec_slowdown: float = DEFAULT_SPECULATIVE_SLOWDOWN
    spec_interval: float = 5.0
    blacklist: Set[int] = field(default_factory=set)
    failures_by_node: Dict[int, int] = field(default_factory=dict)

    def record_failure(self, node_index: int, timing: JobTiming) -> None:
        timing.failed_attempts += 1
        get_metrics().counter("cluster.tasks.failed").add(1)
        count = self.failures_by_node.get(node_index, 0) + 1
        self.failures_by_node[node_index] = count
        if count >= self.blacklist_threshold and node_index not in self.blacklist:
            self.blacklist.add(node_index)
            get_metrics().counter("hadoop.nodes.blacklisted").add(1)
            get_metrics().gauge("hadoop.blacklist.size").set(len(self.blacklist))


class _JobState:
    """Mutable coordination state shared by a job's task processes."""

    def __init__(self, sim: Simulator, num_maps: int, num_reducers: int):
        self.sim = sim
        self.maps_done = 0
        self.num_maps = num_maps
        self.num_reducers = num_reducers
        # map_index -> (node, collector, scale); filled as maps finish,
        # entries removed again when the hosting node dies (lost output)
        self.map_outputs: Dict[int, Tuple[int, _MapOutputCollector, float]] = {}
        self.map_completion_events: List = []  # one Event per map (replaced on loss)
        self.slowstart_event = sim.event()
        self.all_maps_event = sim.event()
        self.last_copy_done = 0.0
        self.compress_ratio = 1.0  # <1 when mapred.compress.map.output
        self.vectorized = False  # repro.exec.vectorized, read at job start
        self.pool = None  # repro.parallel worker pool (None = inline)
        self.map_task_records: Dict[int, TaskTiming] = {}
        self.map_durations: List[float] = []  # successful runs, for speculation

    def map_finished(self, map_index: int, node: int,
                     collector: _MapOutputCollector, scale: float) -> None:
        self.map_outputs[map_index] = (node, collector, scale)
        self.maps_done += 1
        event = self.map_completion_events[map_index]
        if not event.triggered:
            event.trigger(None)
        if not self.slowstart_event.triggered:
            self.slowstart_event.trigger(None)
        if self.maps_done == self.num_maps and not self.all_maps_event.triggered:
            self.all_maps_event.trigger(None)

    def invalidate_map(self, map_index: int) -> bool:
        """Forget a completed map whose local output died with its node.

        Installs a fresh completion event; fetchers re-check
        ``map_outputs`` membership, never just event state, so stale
        triggers from the old event are harmless.
        """
        if map_index not in self.map_outputs:
            return False
        del self.map_outputs[map_index]
        self.maps_done -= 1
        self.map_completion_events[map_index] = self.sim.event()
        return True

    def mean_map_duration(self) -> Optional[float]:
        if not self.map_durations:
            return None
        return sum(self.map_durations) / len(self.map_durations)


class HadoopEngine(Engine):
    name = "hadoop"
    capabilities = EngineCapabilities(
        vectorized=True, speculative=True, shared_runtime=True
    )

    def __init__(
        self,
        hdfs: HDFS,
        spec: Optional[ClusterSpec] = None,
        costs: Optional[HadoopCosts] = None,
    ):
        self.hdfs = hdfs
        self.spec = spec or ClusterSpec()
        self.costs = costs or HadoopCosts()

    # -- public API ---------------------------------------------------------
    def run_plan(
        self,
        plan: PhysicalPlan,
        conf: Optional[Configuration] = None,
        with_metrics: bool = False,
        tracer: Optional[Tracer] = None,
    ) -> PlanResult:
        conf = conf or Configuration()
        runtime = EngineRuntime(
            self.spec, conf, with_metrics=with_metrics, tracer=tracer
        )
        timings: List[JobTiming] = []

        def driver():
            collected = yield from self.plan_process(runtime, plan, conf)
            timings.extend(collected)

        runtime.sim.spawn(driver(), "hive-driver")
        try:
            runtime.sim.run()
        finally:
            runtime.close()
        return collect_plan_result(self, runtime, plan, timings)

    def plan_process(
        self,
        runtime: EngineRuntime,
        plan: PhysicalPlan,
        conf: Optional[Configuration] = None,
        owner: Optional[LeaseOwner] = None,
    ):
        """Execute *plan* job-by-job inside a (possibly shared) runtime."""
        conf = conf or Configuration()
        reduce_slots = runtime.aux_slots(
            "hadoop.reduce", runtime.spec.slots_per_node, "rslots"
        )
        timings: List[JobTiming] = []
        for index, job in enumerate(plan.jobs):
            is_last = index == len(plan.jobs) - 1
            timing = yield from self._run_job(
                runtime.sim, runtime.cluster, reduce_slots, job, conf,
                is_last, runtime.tracer, runtime.injector, runtime.leases,
                owner,
            )
            timings.append(timing)
        return timings

    # -- job execution -----------------------------------------------------------
    def _run_job(self, sim: Simulator, cluster: Cluster,
                 reduce_slots: List[SlotPool], job: MRJob,
                 conf: Configuration, is_last: bool, tracer: Tracer,
                 injector: FaultInjector, leases: LeaseManager,
                 owner: Optional[LeaseOwner]):
        costs = self.costs
        hdfs = self.hdfs
        workers = cluster.workers
        splits = expand_job_splits(job, hdfs)
        small_tables = load_broadcast_tables(job, hdfs)
        scale = job_input_scale(job, hdfs)
        total_bytes = sum(s.logical_bytes for s in splits)
        num_reducers = decide_num_reducers(
            job, len(splits), total_bytes, conf, is_last, self.spec.total_slots
        )
        timing = JobTiming(
            job_id=job.job_id,
            submitted=sim.now,
            num_maps=len(splits),
            num_reducers=num_reducers,
        )
        timing.span = open_job_span(tracer, self.name, job, sim.now, owner)
        ctx = _FaultContext(
            injector=injector,
            max_attempts=max(1, conf.get_int(TASK_MAX_ATTEMPTS,
                                             DEFAULT_MAX_TASK_ATTEMPTS)),
            blacklist_threshold=max(1, conf.get_int(BLACKLIST_THRESHOLD,
                                                    DEFAULT_BLACKLIST_FAILURES)),
            speculate=conf.get_bool(SPECULATIVE_EXECUTION, False),
            spec_slowdown=conf.get_float(SPECULATIVE_SLOWDOWN,
                                         DEFAULT_SPECULATIVE_SLOWDOWN),
            spec_interval=costs.speculative_check_seconds,
        )

        # JobClient -> JobTracker staging
        yield sim.timeout(costs.job_submit)

        if not splits:
            write_task_output(job, hdfs, 0, [], scale)
            timing.first_task_started = sim.now
            timing.shuffle_done = sim.now
            yield sim.timeout(costs.job_cleanup)
            timing.finished = sim.now
            close_job_span(timing)
            record_job_metrics(self.name, timing, self.spec.total_slots)
            return timing

        state = _JobState(sim, len(splits), num_reducers)
        state.map_completion_events = [sim.event() for _ in splits]
        assignment = assign_splits_locality(splits, len(workers))
        first_start_event = sim.event()

        compress = conf.get_bool("mapred.compress.map.output", False)
        state.compress_ratio = self.costs.compress_ratio if compress else 1.0
        state.vectorized = conf.get_bool(EXEC_VECTORIZED, True)
        state.pool = pool_from_conf(conf)
        map_processes = [
            sim.spawn(
                self._map_task(
                    sim, cluster, job, state, timing, index, tagged,
                    assignment[index], small_tables, num_reducers,
                    first_start_event, scale, ctx, leases, owner,
                ),
                f"{job.job_id}-m{index}",
            )
            for index, tagged in enumerate(splits)
        ]

        reduce_processes = []
        if not job.is_map_only:
            for partition in range(num_reducers):
                node_index = partition % len(workers)
                reduce_processes.append(
                    sim.spawn(
                        self._reduce_task(
                            sim, cluster, reduce_slots, job, state, timing,
                            partition, node_index, small_tables, scale, ctx,
                            leases, owner,
                        ),
                        f"{job.job_id}-r{partition}",
                    )
                )

        # a dead node takes the map outputs on its local disks with it:
        # the JobTracker re-executes those completed maps (shuffle jobs
        # only — map-only output already sits in replicated HDFS)
        respawned: List = []

        def on_crash(worker_index: int) -> None:
            if job.is_map_only:
                return
            for map_index, entry in sorted(state.map_outputs.items()):
                if entry[0] != worker_index:
                    continue
                state.invalidate_map(map_index)
                get_metrics().counter("hadoop.maps.lost").add(1)
                respawned.append(
                    sim.spawn(
                        self._map_task(
                            sim, cluster, job, state, timing, map_index,
                            splits[map_index], assignment[map_index],
                            small_tables, num_reducers, first_start_event,
                            scale, ctx, leases, owner,
                            task=state.map_task_records[map_index],
                        ),
                        f"{job.job_id}-m{map_index}-rerun",
                    )
                )

        injector.subscribe_crash(on_crash)
        try:
            pending = map_processes + reduce_processes
            while pending:
                yield sim.all_of(pending)
                pending = respawned[:]
                del respawned[:]
        finally:
            # an interrupt (query deadline) must not leave a stale
            # subscriber respawning tasks for an abandoned job
            injector.unsubscribe_crash(on_crash)

        if job.is_map_only:
            timing.shuffle_done = sim.now
        else:
            timing.shuffle_done = max(timing.shuffle_done, state.last_copy_done)
        yield sim.timeout(costs.job_cleanup)
        timing.finished = sim.now
        timing.shuffle_logical_bytes = sum(
            collector.total_bytes * map_scale
            for _node, collector, map_scale in state.map_outputs.values()
        )
        yield first_start_event  # already triggered by the first map
        timing.first_task_started = first_start_event.value
        close_job_span(timing)
        record_job_metrics(self.name, timing, self.spec.total_slots)
        return timing

    # -- scheduling ---------------------------------------------------------------
    def _pick_node(self, ctx: _FaultContext, cluster: Cluster,
                   preferred: int, salt: int) -> int:
        """Deterministic placement that avoids dead, draining and
        blacklisted nodes; the first execution keeps its
        locality-preferred node."""
        live = [i for i, node in enumerate(cluster.workers) if node.schedulable]
        if not live:  # everything draining: fall back to merely-alive
            live = [i for i, node in enumerate(cluster.workers) if node.alive]
        candidates = [i for i in live if i not in ctx.blacklist] or live
        if not candidates:
            return preferred  # whole cluster down: degenerate fallback
        if salt == 0 and preferred in candidates:
            return preferred
        return candidates[(preferred + salt) % len(candidates)]

    def _charge_split_read(self, cluster: Cluster, node, node_index: int,
                           tagged: TaggedSplit, nbytes: float):
        source_index = pick_read_source(cluster, tagged, node_index)
        if source_index is None:
            yield from node.disk_read(nbytes)
        else:
            source = cluster.workers[source_index]
            yield from source.disk_read(nbytes)
            yield from cluster.network_transfer(source, node, nbytes)

    # -- map task -------------------------------------------------------------------
    def _map_task(self, sim: Simulator, cluster: Cluster, job: MRJob,
                  state: _JobState, timing: JobTiming, index: int,
                  tagged: TaggedSplit, preferred: int, small_tables,
                  num_reducers: int, first_start_event, job_scale: float,
                  ctx: _FaultContext, leases: LeaseManager,
                  owner: Optional[LeaseOwner],
                  task: Optional[TaskTiming] = None):
        """Coordinator for one logical map: runs attempts (with optional
        speculative backups) until one succeeds, then publishes the map
        output."""
        fresh = task is None
        if fresh:
            task = TaskTiming(task_id=f"m{index}", kind="map", node=preferred,
                              scheduled=sim.now)
            timing.tasks.append(task)
            open_task_span(timing, task)
            state.map_task_records[index] = task
        elif task.span is not None:
            task.span.add_event("re-execute", sim.now, reason="lost-map-output")

        commit_cell: Dict[str, bool] = {}
        attempt = 0
        while True:
            attempt += 1
            if not (fresh and attempt == 1):
                task.attempts += 1
            execution = task.attempts
            chosen = self._pick_node(ctx, cluster, preferred,
                                     0 if attempt == 1 else attempt)
            doom = None
            if attempt < ctx.max_attempts:  # the last attempt always runs clean
                doom = ctx.injector.attempt_doom(job.job_id, task.task_id, execution)
            proc = sim.spawn(
                self._map_attempt(
                    sim, cluster, job, state, task, tagged, chosen,
                    small_tables, num_reducers, first_start_event, job_scale,
                    index, doom, commit_cell, leases, owner,
                ),
                f"{job.job_id}-{task.task_id}-e{execution}",
            )
            ctx.injector.register(chosen, proc)
            if ctx.speculate and doom is None:
                result, winner = yield from self._speculate(
                    sim, cluster, state, ctx, task, proc, chosen, index,
                    lambda backup_node: self._map_attempt(
                        sim, cluster, job, state, task, tagged, backup_node,
                        small_tables, num_reducers, first_start_event,
                        job_scale, index, None, commit_cell, leases, owner,
                    ),
                    f"{job.job_id}-{task.task_id}",
                )
                if winner is not None:
                    chosen = winner
            else:
                result = yield proc
                ctx.injector.unregister(chosen, proc)
            outcome = result[0] if isinstance(result, tuple) else "killed"
            if outcome == "ok":
                _tag, collector, map_result = result
                task.node = chosen
                task.rows_read = map_result.rows_read
                task.kv_pairs = map_result.kv_pairs
                task.kv_bytes = map_result.kv_bytes * tagged.split.scale
                task.finished = sim.now
                close_task_span(task)
                state.map_durations.append(task.finished - task.scheduled)
                state.map_finished(index, chosen, collector, tagged.split.scale)
                return
            ctx.record_failure(chosen, timing)
            if task.span is not None:
                task.span.add_event("attempt-failed", sim.now,
                                    outcome=outcome, node=chosen,
                                    execution=execution)

    def _map_attempt(self, sim: Simulator, cluster: Cluster, job: MRJob,
                     state: _JobState, task: TaskTiming, tagged: TaggedSplit,
                     node_index: int, small_tables, num_reducers: int,
                     first_start_event, job_scale: float, index: int,
                     doom: Optional[float], commit_cell: Dict[str, bool],
                     leases: LeaseManager, owner: Optional[LeaseOwner]):
        """One map attempt; returns ("ok", collector, result) or
        ("failed"|"killed"|"lost-race", cause).  All resources it holds
        are released on every exit path, interrupt included."""
        costs = self.costs
        node = cluster.workers[node_index]
        acquired = leases.acquire(node.slots, owner)
        held_slot = False
        held_heap = 0.0
        committed = False
        collector = None
        result = None
        spec = None
        future = None
        if doom is None:
            spec = spec_for_split(
                "hadoop", tagged, num_partitions=num_reducers,
                small_tables=small_tables, vectorized=state.vectorized,
                map_only=job.is_map_only,
                batch_target_mb=costs.batch_target_mb,
                min_batch_rows=costs.min_batch_rows,
            )
            if state.pool is not None:
                # submit before any simulated wait: every sibling attempt
                # scheduled at this same instant reaches the pool before
                # the DES first blocks on a result
                future = state.pool.submit(spec)
        try:
            yield acquired
            held_slot = True
            node.memory.allocate(self.spec.heap_per_task)  # child JVM footprint
            held_heap = self.spec.heap_per_task
            # heartbeat pickup + JVM spawn
            yield sim.timeout(costs.schedule_delay)
            yield from node.compute(costs.task_jvm_start)
            task.started = sim.now
            if not first_start_event.triggered:
                first_start_event.trigger(sim.now)

            if doom is not None:
                # injected failure: burn the work done up to the doom point,
                # then die — the coordinator re-launches elsewhere
                if state.vectorized:
                    _rows, bytes_to_read = scan_split_batch(tagged)
                else:
                    _rows, bytes_to_read = scan_split(tagged)
                partial = bytes_to_read * doom
                yield from self._charge_split_read(cluster, node, node_index,
                                                   tagged, partial)
                yield from node.compute(
                    partial / MB * costs.cpu_map_ms_per_mb / 1000.0
                )
                return ("failed", "injected")

            # the pure compute (scan + operator pipeline) ran on a pool
            # worker — or runs inline right here; either way, replay its
            # per-batch records so every simulated charge lands exactly
            # where the single-process path put it
            outcome = resolve_compute(future, spec)
            collector = outcome.collector
            result = outcome.result

            scale = tagged.split.scale
            orc = tagged.split.stored.__class__.__name__.startswith("Orc")
            spilled_mark = 0.0
            spills = 0
            for batch_bytes, collected_bytes in outcome.records:
                # read this chunk (locally or from a replica over the net)
                yield from self._charge_split_read(cluster, node, node_index,
                                                   tagged, batch_bytes)
                cpu_ms = batch_bytes / MB * costs.cpu_map_ms_per_mb
                if orc:
                    cpu_ms += batch_bytes / MB * costs.cpu_orc_decode_ms_per_mb
                yield from node.compute(cpu_ms / 1000.0)
                emitted = collected_bytes * scale
                task.collect_samples.append((sim.now, collected_bytes))
                # spill when the in-memory map-output buffer overflows
                while emitted - spilled_mark > costs.io_sort_mb * MB:
                    spill_bytes = costs.io_sort_mb * MB
                    spilled_mark += spill_bytes
                    spills += 1
                    spill_span = (
                        task.span.start_child("spill", sim.now, category="spill",
                                              bytes=spill_bytes, node=node_index)
                        if task.span is not None else None
                    )
                    get_metrics().counter("hadoop.spill.bytes").add(spill_bytes)
                    cpu_ms = spill_bytes / MB * costs.cpu_sort_ms_per_mb
                    if state.compress_ratio < 1.0:
                        cpu_ms += spill_bytes / MB * costs.cpu_compress_ms_per_mb
                    yield from node.compute(cpu_ms / 1000.0)
                    yield from node.disk_write(spill_bytes * state.compress_ratio)
                    if spill_span is not None:
                        spill_span.finish(sim.now)

            emitted = collector.total_bytes * scale
            ratio = state.compress_ratio
            final_spill = emitted - spilled_mark
            if final_spill > 0 and not job.is_map_only:
                cpu_ms = final_spill / MB * costs.cpu_sort_ms_per_mb
                if ratio < 1.0:
                    cpu_ms += final_spill / MB * costs.cpu_compress_ms_per_mb
                yield from node.compute(cpu_ms / 1000.0)
                yield from node.disk_write(final_spill * ratio)
            if spills > 0 and not job.is_map_only:
                # merge the spill files into the final map output
                yield from node.disk_read(emitted * ratio)
                yield from node.compute(emitted / MB * costs.cpu_sort_ms_per_mb / 1000.0)
                yield from node.disk_write(emitted * ratio)

            if job.is_map_only:
                # commit point: exactly one attempt may write the part-file
                # (speculative backups lose the race here)
                if commit_cell.get("done"):
                    return ("lost-race", None)
                commit_cell["done"] = True
                data_file = write_task_output(
                    job, self.hdfs, index, result.output_rows, job_scale,
                    writer_node=node_index,
                )
                committed = True
                yield from self._hdfs_write(cluster, node, data_file)

            return ("ok", collector, result)
        except Interrupt as interrupt:
            if committed:
                # output already durable in replicated HDFS — the task
                # succeeded even though its node just died
                return ("ok", collector, result)
            return ("killed", interrupt.cause)
        finally:
            if held_heap:
                node.memory.free(held_heap)
            if held_slot:
                leases.release(node.slots, owner)
            else:
                leases.cancel(node.slots, acquired, owner)

    # -- speculative execution ---------------------------------------------------
    def _speculate(self, sim: Simulator, cluster: Cluster, state: _JobState,
                   ctx: _FaultContext, task: TaskTiming, primary,
                   primary_node: int, salt: int, make_attempt, name: str):
        """Watch a running attempt; once it lags the fleet, launch a
        backup on another node and keep whichever finishes first.
        Returns (result, winner_node or None for the primary)."""
        backup = None
        backup_node = None
        started = sim.now
        while True:
            if backup is None:
                yield sim.any_of([primary, sim.timeout(ctx.spec_interval)])
                if primary.triggered:
                    ctx.injector.unregister(primary_node, primary)
                    return primary.value, None
                estimate = state.mean_map_duration()
                if estimate is None:
                    continue
                if (sim.now - started) <= ctx.spec_slowdown * estimate:
                    continue
                candidates = [
                    i for i in ctx.injector.schedulable_worker_indices()
                    if i != primary_node and i not in ctx.blacklist
                ]
                if not candidates:
                    continue
                backup_node = candidates[(primary_node + salt) % len(candidates)]
                backup = sim.spawn(make_attempt(backup_node), f"{name}-spec")
                ctx.injector.register(backup_node, backup)
                task.attempts += 1
                get_metrics().counter("hadoop.tasks.speculative").add(1)
                if task.span is not None:
                    task.span.add_event("speculative-launch", sim.now,
                                        node=backup_node)
                continue
            yield sim.any_of([primary, backup])
            if primary.triggered:
                first, first_node = primary, primary_node
                second, second_node = backup, backup_node
            else:
                first, first_node = backup, backup_node
                second, second_node = primary, primary_node
            value = first.value
            ctx.injector.unregister(first_node, first)
            if isinstance(value, tuple) and value[0] == "ok":
                if second.alive:
                    second.interrupt("speculation-lost")
                    yield second
                ctx.injector.unregister(second_node, second)
                if first is backup:
                    task.speculative = True
                return value, first_node
            # the finished one failed: whatever the survivor produces wins
            value = yield second
            ctx.injector.unregister(second_node, second)
            if isinstance(value, tuple) and value[0] == "ok" and second is backup:
                task.speculative = True
            return value, second_node

    # -- reduce task -----------------------------------------------------------------
    def _reduce_task(self, sim: Simulator, cluster: Cluster,
                     reduce_slots: List[SlotPool], job: MRJob, state: _JobState,
                     timing: JobTiming, partition: int, preferred: int,
                     small_tables, scale: float, ctx: _FaultContext,
                     leases: LeaseManager, owner: Optional[LeaseOwner]):
        """Coordinator for one logical reduce: attempt-level retry, same
        contract as maps (covers ``repro.failure.rate`` for reduces too)."""
        task = TaskTiming(task_id=f"r{partition}", kind="reduce", node=preferred,
                          scheduled=sim.now)
        timing.tasks.append(task)
        open_task_span(timing, task)

        yield state.slowstart_event  # launch after the first maps complete
        commit_cell: Dict[str, bool] = {}
        attempt = 0
        while True:
            attempt += 1
            if attempt > 1:
                task.attempts += 1
            chosen = self._pick_node(ctx, cluster, preferred,
                                     0 if attempt == 1 else attempt)
            doom = None
            if attempt < ctx.max_attempts:
                doom = ctx.injector.attempt_doom(job.job_id, task.task_id,
                                                 task.attempts)
            proc = sim.spawn(
                self._reduce_attempt(
                    sim, cluster, reduce_slots, job, state, task, partition,
                    chosen, small_tables, scale, doom, commit_cell, leases,
                    owner,
                ),
                f"{job.job_id}-{task.task_id}-e{task.attempts}",
            )
            ctx.injector.register(chosen, proc)
            result = yield proc
            ctx.injector.unregister(chosen, proc)
            outcome = result[0] if isinstance(result, tuple) else "killed"
            if outcome == "ok":
                task.node = chosen
                task.finished = sim.now
                close_task_span(task)
                return
            ctx.record_failure(chosen, timing)
            if task.span is not None:
                task.span.add_event("attempt-failed", sim.now,
                                    outcome=outcome, node=chosen,
                                    execution=task.attempts)

    def _reduce_attempt(self, sim: Simulator, cluster: Cluster,
                        reduce_slots: List[SlotPool], job: MRJob,
                        state: _JobState, task: TaskTiming, partition: int,
                        node_index: int, small_tables, scale: float,
                        doom: Optional[float], commit_cell: Dict[str, bool],
                        leases: LeaseManager, owner: Optional[LeaseOwner]):
        costs = self.costs
        node = cluster.workers[node_index]
        acquired = leases.acquire(reduce_slots[node_index], owner)
        held_slot = False
        held_heap = 0.0
        committed = False
        fetchers: List = []
        try:
            yield acquired
            held_slot = True
            node.memory.allocate(self.spec.heap_per_task)  # reduce JVM footprint
            held_heap = self.spec.heap_per_task
            yield sim.timeout(costs.schedule_delay)
            yield from node.compute(costs.task_jvm_start)
            task.started = sim.now

            # copy phase: mapred.reduce.parallel.copies concurrent fetcher
            # threads pull each map's partition as the map completes
            shuffle_span = (
                task.span.start_child("shuffle", sim.now, category="shuffle",
                                      node=node_index)
                if task.span is not None else None
            )
            fetch_slots = SlotPool(sim, costs.parallel_copies,
                                   f"{task.task_id}.fetchers")
            copied_cell = [0.0]
            pairs_by_map: Dict[int, List[KeyValue]] = {}
            fetchers = [
                sim.spawn(
                    self._fetch_map_output(
                        sim, cluster, state, node, partition, map_index,
                        fetch_slots, copied_cell, pairs_by_map,
                    ),
                    f"{task.task_id}-f{map_index}",
                )
                for map_index in range(state.num_maps)
            ]
            yield sim.all_of(fetchers)
            copied = copied_cell[0]
            state.last_copy_done = max(state.last_copy_done, sim.now)
            task.kv_bytes = copied
            if shuffle_span is not None:
                shuffle_span.finish(sim.now, bytes=copied, maps=state.num_maps)

            if doom is not None:
                # injected failure during the sort/merge phase: the whole
                # copy is thrown away and redone by the next attempt
                return ("failed", "injected")

            # merge-sort phase
            if copied > 0:
                yield from node.compute(copied / MB * costs.cpu_sort_ms_per_mb / 1000.0)
                if copied > costs.shuffle_memory_mb * MB:
                    # read back spilled (compressed) runs
                    yield from node.disk_read(copied * state.compress_ratio)

            pairs: List[KeyValue] = []
            for map_index in range(state.num_maps):
                pairs.extend(pairs_by_map.get(map_index, ()))
            output_rows = run_reducer_functionally(job, pairs, small_tables)

            yield from node.compute(copied / MB * costs.cpu_reduce_ms_per_mb / 1000.0)
            if commit_cell.get("done"):
                return ("lost-race", None)
            commit_cell["done"] = True
            data_file = write_task_output(
                job, self.hdfs, partition, output_rows, scale,
                writer_node=node_index,
            )
            committed = True
            yield from self._hdfs_write(cluster, node, data_file)
            return ("ok",)
        except Interrupt as interrupt:
            for fetcher in fetchers:
                if fetcher.alive:
                    fetcher.interrupt(interrupt.cause)
            if committed:
                return ("ok",)
            return ("killed", interrupt.cause)
        finally:
            if held_heap:
                node.memory.free(held_heap)
            if held_slot:
                leases.release(reduce_slots[node_index], owner)
            else:
                leases.cancel(reduce_slots[node_index], acquired, owner)

    def _fetch_map_output(self, sim: Simulator, cluster: Cluster,
                          state: _JobState, node, partition: int,
                          map_index: int, fetch_slots: SlotPool,
                          copied_cell: List[float],
                          pairs_by_map: Dict[int, List[KeyValue]]):
        """One fetcher: wait for the map, grab a copier slot, pull the
        partition (disk at the source, network, decompress), spill past
        the in-memory shuffle budget.

        Copied data is safe on the reduce side (a map-node death cannot
        take it back); a death *mid-copy* re-waits for the re-executed
        map and pulls again."""
        costs = self.costs
        while True:
            while map_index not in state.map_outputs:
                yield state.map_completion_events[map_index]
            entry = state.map_outputs[map_index]
            source_index, collector, map_scale = entry
            raw_chunk = collector.partition_bytes[partition] * map_scale
            chunk = raw_chunk * state.compress_ratio
            if chunk <= 0:
                pairs_by_map[map_index] = list(collector.partitions[partition])
                return
            yield fetch_slots.acquire()
            try:
                source = cluster.workers[source_index]
                yield from source.disk_read(chunk)
                yield from cluster.network_transfer(source, node, chunk)
                if state.compress_ratio < 1.0:
                    yield from node.compute(
                        raw_chunk / MB * costs.cpu_decompress_ms_per_mb / 1000.0
                    )
                if state.map_outputs.get(map_index) is not entry:
                    continue  # source died mid-copy: re-fetch from the rerun
                pairs_by_map[map_index] = list(collector.partitions[partition])
                copied_cell[0] += raw_chunk
                if copied_cell[0] > costs.shuffle_memory_mb * MB:
                    yield from node.disk_write(chunk)  # overflow to disk
                return
            finally:
                fetch_slots.release()

    # -- HDFS write pipeline -------------------------------------------------------
    def _hdfs_write(self, cluster: Cluster, node, data_file):
        yield from hdfs_write_pipeline(cluster, node, data_file)
