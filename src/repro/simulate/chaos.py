"""Seeded chaos harness: randomized fault + membership schedules with
global invariants.

The harness closes the loop on the fault model: instead of hand-written
fault specs, :func:`generate_schedule` derives a randomized — but fully
seeded, hence replayable — mix of crash windows, stragglers, drains and
scale-ups, runs a fixed query workload under it, and checks four
invariants that must hold no matter what the schedule did:

1. **Correctness** — every query that completes returns exactly the
   rows of a fault-free oracle run on a pristine copy of the same
   warehouse (row-set equality: a degraded run may fall back to another
   engine whose output order differs, but the multiset of rows must
   not).
2. **No lost slots** — the :class:`~repro.simulate.leases.LeaseLedger`
   shows no pool oversubscription, no release-before-grant, and no
   query owner still holding slots after the drain (long-lived owners —
   the parked LLAP daemons and the anonymous solo owner — are exempt by
   design: the runtime parks them holding their node slots).
3. **Cache coherence** — re-running a workload query after the chaos
   run returns oracle rows (a stale cache entry surviving an
   invalidation would surface here).
4. **Liveness** — every submitted query reaches a terminal state; a
   handle stuck forever means a lost wakeup.

Replay determinism is checked separately by :func:`verify_replay`:
running the same (engine, seed) twice must produce identical reports.

The module is deliberately *not* imported by ``repro.simulate`` — it
sits above the session layer (it builds warehouses and drives
schedulers), so the session import happens lazily inside functions.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import (
    FAULT_SPEC,
    QUERY_DEADLINE,
    RETRY_FALLBACK,
    SCHED_MAX_CONCURRENT,
)
from repro.common.errors import ExecutionError, QueryTimeoutError
from repro.simulate.faults import FaultPlan
from repro.simulate.leases import LeaseLedger

#: Lease owners that legitimately hold slots past the end of a run: the
#: persistent LLAP daemons park on their node slots by design, and the
#: anonymous owner covers solo (non-scheduler) statements.
LONG_LIVED_OWNERS = ("llap-daemons", "-")

#: The fixed chaos workload.  Only order-independent aggregates (count,
#: max) so rows stay comparable when a query degrades to a fallback
#: engine; the last query repeats the first to exercise the result
#: cache under invalidation.
CHAOS_QUERIES: Tuple[str, ...] = (
    "SELECT grp, count(*) FROM facts GROUP BY grp",
    "SELECT count(*) FROM facts",
    "SELECT grp, max(val) FROM facts WHERE k < 3000 GROUP BY grp",
    "SELECT grp, count(*) FROM facts GROUP BY grp",
)

#: Fault classes whose recovery time the report tracks (injector event
#: kind -> report label).
_RECOVERY_CLASSES = {
    "node-crash": "crash",
    "drain-start": "drain",
    "node-join": "scale-up",
}


class ChaosInvariantError(ExecutionError):
    """A chaos run violated one of the global invariants."""


@dataclass(frozen=True)
class ChaosSchedule:
    """One seeded fault + membership schedule (replayable by spec)."""

    seed: int
    num_workers: int
    horizon: float
    spec: str
    plan: FaultPlan


@dataclass
class ChaosReport:
    """Outcome of one chaos run with all invariants verified."""

    engine: str
    seed: int
    spec: str
    queries: int
    succeeded: int
    deadline_misses: int
    makespan: float
    fault_events: List[Tuple[float, str]] = field(default_factory=list)
    #: mean seconds from each fault-class event to the next query
    #: completion (empty when no query finished after the event)
    recovery_seconds: Dict[str, float] = field(default_factory=dict)
    row_digests: List[str] = field(default_factory=list)
    cache_recheck_hit: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "seed": self.seed,
            "spec": self.spec,
            "queries": self.queries,
            "succeeded": self.succeeded,
            "deadline_misses": self.deadline_misses,
            "makespan": round(self.makespan, 6),
            "fault_events": [[round(t, 6), kind] for t, kind in self.fault_events],
            "recovery_seconds": {
                kind: round(value, 6)
                for kind, value in sorted(self.recovery_seconds.items())
            },
            "row_digests": list(self.row_digests),
            "cache_recheck_hit": self.cache_recheck_hit,
        }


# -- schedule generation -----------------------------------------------------

def generate_schedule(seed: int, num_workers: int = 5,
                      horizon: float = 120.0) -> ChaosSchedule:
    """Derive a randomized fault + membership schedule from *seed*.

    Every clause targets a distinct worker (the fault grammar rejects
    overlapping windows for one worker, and the point here is breadth,
    not pile-ups): one or two crash-with-recovery windows, then with
    seed-dependent probability a straggler, a graceful drain, and a
    scale-up of a brand-new worker index.  The result is validated
    through :meth:`FaultPlan.parse`, so a generated spec is exactly as
    trustworthy as a hand-written one.
    """
    if num_workers < 3:
        raise ExecutionError("chaos schedules need at least 3 workers")
    rng = random.Random(seed)
    pool = list(range(num_workers))
    rng.shuffle(pool)
    clauses = [f"seed:{seed}"]

    for _ in range(rng.choice((1, 1, 2))):
        worker = pool.pop()
        start = round(rng.uniform(2.0, horizon * 0.4), 1)
        width = round(rng.uniform(10.0, horizon * 0.4), 1)
        clauses.append(f"crash:w{worker}@{start:g}-{start + width:g}")

    if rng.random() < 0.6:
        worker = pool.pop()
        factor = rng.choice((2, 3, 4))
        start = round(rng.uniform(0.0, horizon * 0.3), 1)
        width = round(rng.uniform(15.0, horizon * 0.5), 1)
        clauses.append(f"slow:w{worker}x{factor}@{start:g}-{start + width:g}")

    if len(pool) > 1 and rng.random() < 0.5:
        worker = pool.pop()
        at = round(rng.uniform(horizon * 0.2, horizon * 0.6), 1)
        clauses.append(f"drain:w{worker}@{at:g}")

    if rng.random() < 0.5:
        at = round(rng.uniform(2.0, horizon * 0.5), 1)
        clauses.append(f"scale-up:w{num_workers}@{at:g}")

    spec = "; ".join(clauses)
    return ChaosSchedule(
        seed=seed,
        num_workers=num_workers,
        horizon=horizon,
        spec=spec,
        plan=FaultPlan.parse(spec),
    )


# -- ledger audit ------------------------------------------------------------

def assert_clean_ledger(ledger: LeaseLedger,
                        allowed_holders: Sequence[str] = LONG_LIVED_OWNERS,
                        ) -> None:
    """Raise :class:`ChaosInvariantError` unless the ledger balances.

    Checks, in order: no pool's observed peak ever exceeded its
    capacity; no pool's running grant/release balance ever went
    negative (a double release); and no owner outside
    *allowed_holders* still holds a slot (a lost slot — the task died
    without its lease being returned).

    The balance check reads the ledger's O(1) aggregate counters
    (``negative_balance``), so it holds whether or not the per-slot
    event trail was recorded (``repro.lease.audit``); when events *are*
    present — an audited run, or a trail assembled by hand in tests —
    they are replayed too.
    """
    over = ledger.oversubscribed_pools()
    if over:
        raise ChaosInvariantError(f"oversubscribed pools: {over}")
    if ledger.negative_balance is not None:
        raise ChaosInvariantError(ledger.negative_balance)
    balance: Dict[str, int] = {}
    for time, action, pool, query in ledger.events:
        delta = 1 if action == "grant" else -1
        balance[pool] = balance.get(pool, 0) + delta
        if balance[pool] < 0:
            raise ChaosInvariantError(
                f"pool {pool!r} released more slots than were granted "
                f"(at t={time:g}, owner {query!r})"
            )
    leaks = sorted(
        (owner, usage.held)
        for owner, usage in ledger.usage.items()
        if usage.held and owner not in allowed_holders
    )
    if leaks:
        raise ChaosInvariantError(
            "slots still held after drain: "
            + ", ".join(f"{owner}={held}" for owner, held in leaks)
        )


# -- the chaos run -----------------------------------------------------------

def _build_warehouse(num_workers: int):
    """A pristine deterministic warehouse (one ``facts`` table); every
    call returns an identical, independent copy."""
    from repro.common.rows import Schema
    from repro.storage.hdfs import HDFS
    from repro.storage.metastore import Metastore

    rng = random.Random(1234)
    schema = Schema.parse("k int, grp string, val double")
    rows = [
        (i, f"g{rng.randrange(16)}", round(rng.uniform(0.0, 100.0), 3))
        for i in range(3000)
    ]
    hdfs = HDFS(num_workers=num_workers)
    metastore = Metastore(hdfs)
    table = metastore.create_table("facts", schema, format_name="text")
    hdfs.write(f"{table.location}/part-0", schema, rows, scale=1.5e5)
    return hdfs, metastore


def _fresh_session(engine: str, num_workers: int, conf=None):
    from repro.session import connect

    hdfs, metastore = _build_warehouse(num_workers)
    session = connect(engine=engine, hdfs=hdfs, metastore=metastore, conf=conf)
    # cap admission so the workload stretches across the fault windows
    # instead of finishing before the first one opens
    session.conf.set(SCHED_MAX_CONCURRENT, 2)
    return session


def _canonical(rows) -> List[tuple]:
    return sorted((tuple(row) for row in rows or []), key=repr)


def _digest(rows) -> str:
    payload = repr(_canonical(rows)).encode("utf-8")
    return hashlib.sha1(payload).hexdigest()[:16]


def oracle_rows(engine: str, queries: Sequence[str], num_workers: int = 5,
                conf=None) -> List[List[tuple]]:
    """Fault-free reference rows for *queries*, one pristine warehouse,
    same engine, no deadline."""
    session = _fresh_session(engine, num_workers, conf)
    try:
        handles = [session.submit(sql) for sql in queries]
        session.scheduler.drain()
        return [_canonical(handle.result().rows) for handle in handles]
    finally:
        session.close()


def run_chaos(engine: str = "hadoop", seed: int = 0, num_workers: int = 5,
              horizon: float = 120.0, deadline: Optional[float] = None,
              queries: Optional[Sequence[str]] = None, conf=None,
              oracle: Optional[List[List[tuple]]] = None) -> ChaosReport:
    """Run the chaos workload under a seeded schedule and verify every
    invariant; returns the :class:`ChaosReport` on success.

    *deadline* (simulated seconds, optional) bounds each query; a
    deadline miss is **not** an invariant violation — it is counted and
    reported — but a query failing any other way is.  Pass a
    precomputed *oracle* (from :func:`oracle_rows`) to amortize the
    reference run across many seeds.
    """
    from repro import engines as engine_registry

    schedule = generate_schedule(seed, num_workers=num_workers, horizon=horizon)
    workload = list(queries or CHAOS_QUERIES)
    if oracle is None:
        oracle = oracle_rows(engine, workload, num_workers=num_workers, conf=conf)
    if len(oracle) != len(workload):
        raise ExecutionError("oracle does not match the workload")

    session = _fresh_session(engine, num_workers, conf)
    try:
        session.conf.set(FAULT_SPEC, schedule.spec)
        degrades = engine_registry.get_spec(session.engine.name).degrades_to
        if degrades:
            session.conf.set(RETRY_FALLBACK, degrades[0])
        if deadline is not None:
            session.conf.set(QUERY_DEADLINE, deadline)

        handles = [session.submit(sql) for sql in workload]
        scheduler = session.scheduler
        scheduler.drain()

        # -- invariant 4: liveness --
        stuck = [h.query_id for h in handles if not h.done()]
        if stuck:
            raise ChaosInvariantError(f"queries never finished: {stuck}")

        # -- invariant 1: fault-free oracle equivalence --
        succeeded = 0
        deadline_misses = 0
        digests: List[str] = []
        for index, handle in enumerate(handles):
            if handle.deadline_missed:
                deadline_misses += 1
                if not isinstance(handle.error, QueryTimeoutError):
                    raise ChaosInvariantError(
                        f"{handle.query_id} missed its deadline but raised "
                        f"{type(handle.error).__name__} instead of "
                        f"QueryTimeoutError"
                    )
                digests.append("-")
                continue
            if handle.error is not None:
                raise ChaosInvariantError(
                    f"{handle.query_id} failed under seed {seed}: {handle.error}"
                )
            rows = _canonical(handle.result().rows)
            if rows != oracle[index]:
                raise ChaosInvariantError(
                    f"{handle.query_id} rows diverged from the fault-free "
                    f"oracle under seed {seed} (query {index}: {workload[index]!r})"
                )
            succeeded += 1
            digests.append(_digest(rows))

        # -- invariant 2: lease ledger balances --
        assert_clean_ledger(scheduler.runtime.leases.ledger)

        # -- invariant 3: cache coherence after the dust settles --
        # the recheck probes staleness, not latency: lift the deadline
        if deadline is not None:
            session.conf.set(QUERY_DEADLINE, 0.0)
        recheck = session.submit(workload[0])
        scheduler.drain()
        if recheck.error is not None:
            raise ChaosInvariantError(
                f"post-chaos recheck failed: {recheck.error}"
            )
        recheck_result = recheck.result()
        if _canonical(recheck_result.rows) != oracle[0]:
            raise ChaosInvariantError(
                f"post-chaos recheck returned stale rows under seed {seed}"
            )

        summary = scheduler.summary()
        injector_events = [
            (event.time, event.kind)
            for event in scheduler.runtime.injector.events
        ]
        finish_times = sorted(
            h.finished_at for h in handles
            if h.finished_at is not None and h.error is None
        )
        recovery: Dict[str, List[float]] = {}
        for time, kind in injector_events:
            label = _RECOVERY_CLASSES.get(kind)
            if label is None:
                continue
            after = [t for t in finish_times if t >= time]
            if after:
                recovery.setdefault(label, []).append(after[0] - time)
        return ChaosReport(
            engine=session.engine.name,
            seed=seed,
            spec=schedule.spec,
            queries=len(handles),
            succeeded=succeeded,
            deadline_misses=deadline_misses,
            makespan=float(summary["makespan"]),
            fault_events=injector_events,
            recovery_seconds={
                kind: sum(values) / len(values)
                for kind, values in recovery.items()
            },
            row_digests=digests,
            cache_recheck_hit=bool(recheck_result.cache_hit),
        )
    finally:
        session.close()


def verify_replay(engine: str, seed: int, **kwargs) -> ChaosReport:
    """Run the same schedule twice and require identical reports —
    the determinism guarantee the whole fault model rests on."""
    first = run_chaos(engine, seed, **kwargs)
    second = run_chaos(engine, seed, **kwargs)
    if first.to_dict() != second.to_dict():
        raise ChaosInvariantError(
            f"replay diverged for engine={engine} seed={seed}: "
            f"{first.to_dict()} != {second.to_dict()}"
        )
    return first


__all__ = [
    "CHAOS_QUERIES",
    "ChaosInvariantError",
    "ChaosReport",
    "ChaosSchedule",
    "assert_clean_ledger",
    "generate_schedule",
    "oracle_rows",
    "run_chaos",
    "verify_replay",
]
